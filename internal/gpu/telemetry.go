package gpu

import "pjds/internal/telemetry"

// Publish exports the kernel statistics into reg (nil selects
// telemetry.Default()). Every series carries kernel and device labels
// plus the extras (internal/distmv adds rank and phase). Raw
// transaction counts go to counters — they accumulate across runs and
// are order-independent, hence deterministic even for concurrent rank
// goroutines — while the derived model quantities of the paper
// (code balance B_code of Eq. 1, the RHS reuse factor α, coalescing
// and lane efficiency, GF/s) go to last-value gauges.
func (s *KernelStats) Publish(reg *telemetry.Registry, extra ...telemetry.Label) {
	if reg == nil {
		reg = telemetry.Default()
	}
	lbl := append([]telemetry.Label{
		telemetry.L("kernel", s.Kernel),
		telemetry.L("device", s.Device),
	}, extra...)

	reg.Help("gpu_kernel_runs_total", "simulated kernel executions")
	reg.Counter("gpu_kernel_runs_total", lbl...).Inc()
	reg.Help("gpu_kernel_rows_total", "matrix rows processed")
	reg.Counter("gpu_kernel_rows_total", lbl...).Add(float64(s.Rows))
	reg.Help("gpu_kernel_nnz_total", "non-zeros processed")
	reg.Counter("gpu_kernel_nnz_total", lbl...).Add(float64(s.Nnz))
	reg.Help("gpu_kernel_useful_flops_total", "useful flops (2·nnz, the paper's GF/s numerator)")
	reg.Counter("gpu_kernel_useful_flops_total", lbl...).Add(float64(s.UsefulFlops))
	reg.Help("gpu_kernel_lane_steps_total", "FMA slots executed by active lanes")
	reg.Counter("gpu_kernel_lane_steps_total", lbl...).Add(float64(s.ExecutedLaneSteps))
	reg.Help("gpu_kernel_warp_steps_total", "SIMT instruction steps summed over warps (Fig. 2's hardware reservation)")
	reg.Counter("gpu_kernel_warp_steps_total", lbl...).Add(float64(s.WarpSteps))
	reg.Help("gpu_kernel_warps_total", "warps launched")
	reg.Counter("gpu_kernel_warps_total", lbl...).Add(float64(s.Warps))
	reg.Help("gpu_kernel_active_warps_total", "warps with at least one non-empty row")
	reg.Counter("gpu_kernel_active_warps_total", lbl...).Add(float64(s.ActiveWarps))
	reg.Help("gpu_kernel_rhs_probes_total", "L2 lookups of the RHS gather")
	reg.Counter("gpu_kernel_rhs_probes_total", lbl...).Add(float64(s.RHSProbes))
	reg.Help("gpu_kernel_rhs_misses_total", "L2 misses of the RHS gather")
	reg.Counter("gpu_kernel_rhs_misses_total", lbl...).Add(float64(s.RHSMisses))
	reg.Help("gpu_kernel_seconds_total", "derived kernel wallclock")
	reg.Counter("gpu_kernel_seconds_total", lbl...).Add(s.KernelSeconds)

	reg.Help("gpu_kernel_bytes_total", "device-memory traffic by stream")
	for _, st := range []struct {
		stream string
		bytes  int64
	}{
		{"val", s.BytesVal},
		{"idx", s.BytesIdx},
		{"rhs", s.BytesRHS},
		{"lhs", s.BytesLHS},
		{"meta", s.BytesMeta},
	} {
		reg.Counter("gpu_kernel_bytes_total", append([]telemetry.Label{telemetry.L("stream", st.stream)}, lbl...)...).
			Add(float64(st.bytes))
	}

	reg.Help("gpu_kernel_code_balance", "bytes per useful flop (Eq. 1's B_code)")
	reg.Gauge("gpu_kernel_code_balance", lbl...).Set(s.CodeBalance)
	reg.Help("gpu_kernel_alpha", "measured RHS traffic per non-zero in element widths (Eq. 1's α)")
	reg.Gauge("gpu_kernel_alpha", lbl...).Set(s.Alpha)
	reg.Help("gpu_kernel_coalescing_efficiency", "minimal / actual val+idx stream traffic")
	reg.Gauge("gpu_kernel_coalescing_efficiency", lbl...).Set(s.CoalescingEfficiency)
	reg.Help("gpu_kernel_l2_hit_rate", "RHS gather L2 hit rate")
	reg.Gauge("gpu_kernel_l2_hit_rate", lbl...).Set(s.L2HitRate)
	reg.Help("gpu_kernel_lane_efficiency", "executed lane steps / reserved SIMT slots (warp divergence)")
	reg.Gauge("gpu_kernel_lane_efficiency", lbl...).Set(s.LaneEfficiency)
	reg.Help("gpu_kernel_gflops", "useful GF/s of the last run (as in Table I)")
	reg.Gauge("gpu_kernel_gflops", lbl...).Set(s.GFlops)
}

// publishFormatGeometry exports the layout-quality gauges of a
// parameterized chunked format: the zero-padding overhead
// β = stored/nnz − 1 and the chunk occupancy nnz/stored = 1/(1+β).
// Callers attach the parameter labels (c/sigma for SELL-C-σ, height
// for CMRS), so the tuner's sweep leaves one gauge series per grid
// cell it compiled.
func publishFormatGeometry(reg *telemetry.Registry, stored, nnz int64, lbl ...telemetry.Label) {
	if reg == nil {
		reg = telemetry.Default()
	}
	beta, occ := 0.0, 1.0
	if nnz > 0 && stored > 0 {
		beta = float64(stored)/float64(nnz) - 1
		occ = float64(nnz) / float64(stored)
	}
	reg.Help("gpu_format_zero_padding", "zero-padding overhead beta = stored/nnz - 1 of the compiled layout")
	reg.Gauge("gpu_format_zero_padding", lbl...).Set(beta)
	reg.Help("gpu_format_chunk_occupancy", "fraction of stored slots holding genuine non-zeros (1/(1+beta))")
	reg.Gauge("gpu_format_chunk_occupancy", lbl...).Set(occ)
}
