package gpu

import (
	"fmt"

	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// RunCMRS executes the CMRS spMVM of Koza et al. (arXiv:1203.2946):
// one warp per strip, lanes striding the strip's CSR-ordered elements
// jointly. Because the val/colidx streams are walked front to back
// with unit stride, every load is perfectly coalesced regardless of
// the row-length distribution — CMRS converts pJDS/SELL's potential
// zero-padding traffic into one row-in-strip metadata byte per
// element plus an in-warp scatter of at most Height partial sums.
//
// The numeric replay accumulates each row's sum in CSR element order
// with a per-row accumulator, so results are bit-identical to the
// naive CRS reference at any worker count (warps own disjoint strips,
// strips own disjoint rows).
func RunCMRS[T matrix.Float](d *Device, c *formats.CMRS[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != c.NCols || len(y) != c.N {
		return nil, fmt.Errorf("gpu: CMRS run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), c.N, c.NCols, matrix.ErrShape)
	}
	if c.Height > d.WarpSize {
		return nil, fmt.Errorf("gpu: CMRS strip height %d exceeds warp size %d (per-warp scatter must fit the lane registers)", c.Height, d.WarpSize)
	}
	if err := eccCheck(opt, c.Name()); err != nil {
		return nil, err
	}
	ws := d.WarpSize
	p := planFor(opt, d, c.Name(), c, func() *Plan[T] {
		// One warp per strip: lane l of strip s touches elements
		// StripPtr[s] + j·ws + l, so lane steps are ceil((nnz_s − l)/ws).
		nPad := c.NStrips * ws
		steps := make([]int32, nPad)
		for s := 0; s < c.NStrips; s++ {
			nnzS := int(c.StripPtr[s+1] - c.StripPtr[s])
			for lane := 0; lane < ws && lane < nnzS; lane++ {
				steps[s*ws+lane] = int32((nnzS - lane + ws - 1) / ws)
			}
		}
		segBytes := int64(d.SegmentBytes)
		return compilePlan(d, planSource[T]{
			kernel: c.Name(), rows: c.N, cols: c.NCols, nPad: nPad,
			nnz: int64(c.NnzV), metaSegs: 1, // strip-pointer load (overridden per warp below)
			val: c.Val, steps: steps,
			access: func(i, j int) (int64, int32) {
				at := c.StripPtr[i/ws] + int64(j*ws+i%ws)
				return at, c.ColIdx[at]
			},
			lhsRows: func(wbase, lanes int) (int, int) {
				lo := wbase / ws * c.Height
				hi := lo + c.Height
				if lo > c.N {
					lo = c.N
				}
				if hi > c.N {
					hi = c.N
				}
				return lo, hi
			},
			metaBytes: func(wbase, lanes int) int64 {
				// One coalesced segment for the strip pointers plus the
				// row-in-strip byte stream (1 B per element, streamed in
				// unit stride alongside the values).
				elems := c.StripPtr[wbase/ws+1] - c.StripPtr[wbase/ws]
				return (1 + (elems+segBytes-1)/segBytes) * segBytes
			},
			mul: func(sum, y, x []T, wbase int, accumulate bool) {
				s := wbase / ws
				base := s * c.Height
				rows := c.Height
				if base+rows > c.N {
					rows = c.N - base
				}
				acc := sum[:rows]
				for r := range acc {
					acc[r] = 0
				}
				for e := c.StripPtr[s]; e < c.StripPtr[s+1]; e++ {
					acc[c.RowInStrip[e]] += c.Val[e] * x[c.ColIdx[e]]
				}
				storeResult(y, acc, base, c.N, accumulate)
			},
		})
	})
	st := p.run(d, y, x, opt)
	publishFormatGeometry(opt.Metrics, c.StoredElems(), int64(c.NnzV),
		telemetry.L("kernel", c.Name()),
		telemetry.L("device", d.Name),
		telemetry.Li("height", c.Height))
	return st, nil
}
