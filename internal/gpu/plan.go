package gpu

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"pjds/internal/core"
	"pjds/internal/matrix"
	"pjds/internal/profiles"
)

// defaultWorkers holds the package-wide worker-count default applied
// when RunOptions.Workers is 0. A stored value ≤ 0 selects
// runtime.GOMAXPROCS(0). The CLIs set it from their -workers flag so
// the experiment drivers need no per-call plumbing.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the package default for RunOptions.Workers=0
// callers: n ≤ 0 restores the GOMAXPROCS default, 1 forces sequential
// execution everywhere, n > 1 enables n-way warp parallelism.
func SetDefaultWorkers(n int) { defaultWorkers.Store(int32(n)) }

// DefaultWorkers returns the effective package default worker count.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// planSource describes one storage format's warp-level access pattern
// to the shared plan compiler and replay loop. The four kernels of
// kernels.go differ only in these fields; everything else — coalescing
// analysis, L2 simulation, divergence accounting, the numeric warp
// loop and the worker pool — is shared.
type planSource[T matrix.Float] struct {
	kernel           string
	rows, cols, nPad int
	nnz              int64
	// metaSegs is the number of coalesced metadata segments (row
	// lengths, slice offsets) every warp loads: 0 for plain ELLPACK,
	// 1 for ELLPACK-R and pJDS, 2 for sliced ELLPACK.
	metaSegs int64
	// val backs the numeric replay; access locates element (i, j) in
	// it and returns its column index. steps[i] is the number of SIMT
	// steps padded row i executes (its true row length, or the global
	// maximum for plain ELLPACK, which computes on padding).
	val    []T
	steps  []int32
	access func(i, j int) (at int64, c int32)

	// The optional hooks below cover element-parallel kernels (CMRS)
	// whose warps do not map one lane to one row. All three default to
	// the row-parallel behaviour when nil.
	//
	// mul replaces the default per-lane dot-product executor for one
	// warp; sum is a warpSize-long scratch buffer. Implementations must
	// keep warps writing disjoint y rows (the parallel-replay contract)
	// and accumulate each row in stored column order (the bit-identity
	// contract).
	mul func(sum, y, x []T, wbase int, accumulate bool)
	// lhsRows reports the result rows warp [wbase, wbase+lanes) writes;
	// nil means rows wbase..wbase+lanes clipped to rows.
	lhsRows func(wbase, lanes int) (lo, hi int)
	// metaBytes reports the warp's metadata traffic; nil charges the
	// flat metaSegs coalesced segments.
	metaBytes func(wbase, lanes int) int64
}

// warpPlan is the compiled schedule of one warp: its geometry plus
// every transaction-level counter the simulator would derive for it.
// All fields depend only on matrix structure and device geometry, so
// they are computed once at compile time — including the RHS L2
// misses, which the compiler resolves by replaying the gather stream
// through the cache model in sequential warp order. Replays therefore
// never touch the (order-dependent) cache simulator, which is what
// makes parallel execution bit-exact.
type warpPlan struct {
	wbase, lanes, maxLen int
	laneSteps            int64
	bytesVal, bytesIdx   int64
	bytesRHS, metaBytes  int64
	lhsSegs              int64 // result-vector segments (doubled when accumulating)
	rhsProbes, rhsMisses int64
}

// Plan is the compiled execution schedule of one (matrix, format,
// device-geometry) pair: per-warp lane counts, step bounds, stream
// segment totals and the pre-resolved RHS descriptor outcomes. Run*
// calls replay it — numeric work plus counter addition — instead of
// re-deriving the geometry every iteration. Plans are immutable after
// compilation and safe for concurrent replay.
type Plan[T matrix.Float] struct {
	src       planSource[T]
	elemBytes int
	warpSize  int
	segBytes  int64
	warps     []warpPlan
	// labels is the prebuilt pprof label context replay workers adopt
	// at spawn (phase=gpu, kernel=...): built once at compile time so
	// labeling a fresh goroutine costs no allocation at replay time.
	labels context.Context
}

// Kernel returns the kernel name the plan was compiled for.
func (p *Plan[T]) Kernel() string { return p.src.kernel }

// Warps returns the number of warps the plan schedules.
func (p *Plan[T]) Warps() int { return len(p.warps) }

// compilePlan runs the full transaction-level analysis once: warp
// geometry, val/idx coalescing, the LHS segment count, and the RHS
// gather replayed through the L2 model in sequential warp order.
func compilePlan[T matrix.Float](d *Device, src planSource[T]) *Plan[T] {
	es := core.SizeofElem[T]()
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter

	p := &Plan[T]{
		src:       src,
		elemBytes: es,
		warpSize:  ws,
		segBytes:  segBytes,
		warps:     make([]warpPlan, 0, (src.nPad+ws-1)/ws),
		labels:    profiles.Ctx(profiles.PhaseGPU, "kernel", src.kernel),
	}
	for wbase := 0; wbase < src.nPad; wbase += ws {
		lanes := ws
		if wbase+lanes > src.nPad {
			lanes = src.nPad - wbase
		}
		maxLen := 0
		for lane := 0; lane < lanes; lane++ {
			if l := int(src.steps[wbase+lane]); l > maxLen {
				maxLen = l
			}
		}
		wp := warpPlan{
			wbase: wbase, lanes: lanes, maxLen: maxLen,
			metaBytes: src.metaSegs * segBytes,
		}
		if src.metaBytes != nil {
			wp.metaBytes = src.metaBytes(wbase, lanes)
		}
		for j := 0; j < maxLen; j++ {
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < lanes; lane++ {
				i := wbase + lane
				if j >= int(src.steps[i]) {
					continue // lane idle: reserved but useless (light boxes of Fig. 2b)
				}
				at, c := src.access(i, j)
				wp.laneSteps++
				valSegs.add(addrVal+at*int64(es), segShift)
				idxSegs.add(addrIdx+at*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			wp.bytesVal += int64(len(valSegs.segs)) * segBytes
			wp.bytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				wp.rhsProbes++
				if !l2.probe(sec << secShift) {
					wp.rhsMisses++
					wp.bytesRHS += secBytes
				}
			}
		}
		lhsLo, lhsHi := wbase, min(wbase+lanes, src.rows)
		if src.lhsRows != nil {
			lhsLo, lhsHi = src.lhsRows(wbase, lanes)
		}
		wp.lhsSegs = lhsSegments(&lhsSegs, lhsLo, lhsHi, es, segShift)
		p.warps = append(p.warps, wp)
	}
	return p
}

// mulWarp executes one warp's arithmetic: per-lane dot-product partial
// sums in ascending step order (the same order as the sequential
// simulator, so results are bit-exact for any schedule), committed to
// the rows the warp owns. Warps own disjoint row ranges, so concurrent
// calls never write the same element.
func (p *Plan[T]) mulWarp(wp *warpPlan, sum, y, x []T, accumulate bool) {
	if p.src.mul != nil {
		p.src.mul(sum, y, x, wp.wbase, accumulate)
		return
	}
	steps, access, val := p.src.steps, p.src.access, p.src.val
	sum = sum[:wp.lanes]
	for l := range sum {
		sum[l] = 0
	}
	for j := 0; j < wp.maxLen; j++ {
		for lane := 0; lane < wp.lanes; lane++ {
			i := wp.wbase + lane
			if j >= int(steps[i]) {
				continue
			}
			at, c := access(i, j)
			sum[lane] += val[at] * x[c]
		}
	}
	storeResult(y, sum, wp.wbase, p.src.rows, accumulate)
}

// addWarp accumulates one compiled warp's counters into s.
func (s *KernelStats) addWarp(wp *warpPlan, segBytes int64, accumulate bool) {
	s.Warps++
	if wp.maxLen > 0 {
		s.ActiveWarps++
	}
	s.WarpSteps += int64(wp.maxLen)
	s.ExecutedLaneSteps += wp.laneSteps
	s.BytesVal += wp.bytesVal
	s.BytesIdx += wp.bytesIdx
	s.BytesRHS += wp.bytesRHS
	lhs := wp.lhsSegs * segBytes
	if accumulate {
		lhs *= 2
	}
	s.BytesLHS += lhs
	s.BytesMeta += wp.metaBytes
	s.RHSProbes += wp.rhsProbes
	s.RHSMisses += wp.rhsMisses
}

// mergeShard folds one worker's counter shard into s. Every field is
// an integer sum over warps, so the merge is exact and independent of
// the schedule; shards are still merged in fixed worker order so the
// reduction is deterministic by construction, not by argument.
func (s *KernelStats) mergeShard(o *KernelStats) {
	s.Warps += o.Warps
	s.ActiveWarps += o.ActiveWarps
	s.WarpSteps += o.WarpSteps
	s.ExecutedLaneSteps += o.ExecutedLaneSteps
	s.BytesVal += o.BytesVal
	s.BytesIdx += o.BytesIdx
	s.BytesRHS += o.BytesRHS
	s.BytesLHS += o.BytesLHS
	s.BytesMeta += o.BytesMeta
	s.RHSProbes += o.RHSProbes
	s.RHSMisses += o.RHSMisses
}

// run replays the plan: numeric warp execution (sequential or on a
// worker pool) plus per-warp counter accumulation, then the derived
// timing on the actual device (which may differ from the compile
// device in bandwidth-only fields such as the ECC mode).
func (p *Plan[T]) run(d *Device, y, x []T, opt RunOptions) *KernelStats {
	st := &KernelStats{
		Kernel: p.src.kernel, Rows: p.src.rows, Nnz: p.src.nnz,
		UsefulFlops: 2 * p.src.nnz, ElemBytes: p.elemBytes,
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(p.warps) {
		workers = len(p.warps)
	}
	if workers <= 1 {
		sum := make([]T, p.warpSize)
		for i := range p.warps {
			wp := &p.warps[i]
			p.mulWarp(wp, sum, y, x, opt.Accumulate)
			st.addWarp(wp, p.segBytes, opt.Accumulate)
		}
	} else {
		// Chunked self-scheduling: workers claim fixed-size runs of
		// consecutive warps from an atomic cursor. The assignment of
		// warps to workers is racy, but no output depends on it: y
		// rows are disjoint and the shards merge exactly.
		chunk := len(p.warps) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		if chunk > 256 {
			chunk = 256
		}
		shards := make([]KernelStats, workers)
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sh *KernelStats) {
				defer wg.Done()
				// Fresh goroutine: adopt the plan's phase=gpu labels
				// for its whole (short) life. Prebuilt context, so
				// this allocates nothing per replay.
				pprof.SetGoroutineLabels(p.labels)
				sum := make([]T, p.warpSize)
				for {
					hi := int(cursor.Add(int64(chunk)))
					lo := hi - chunk
					if lo >= len(p.warps) {
						return
					}
					if hi > len(p.warps) {
						hi = len(p.warps)
					}
					for i := lo; i < hi; i++ {
						wp := &p.warps[i]
						p.mulWarp(wp, sum, y, x, opt.Accumulate)
						sh.addWarp(wp, p.segBytes, opt.Accumulate)
					}
				}
			}(&shards[w])
		}
		wg.Wait()
		for w := range shards {
			st.mergeShard(&shards[w])
		}
	}
	st.finish(d, p.warpSize)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st
}
