package gpu

import (
	"sync"
	"sync/atomic"
	"time"

	"pjds/internal/flight"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// devFingerprint captures the device fields the transaction counters
// depend on. Name, clock, bandwidth and the ECC flag are deliberately
// excluded: finish() applies them at replay time, so one plan serves
// e.g. both ECC modes of a board (Table I re-uses one simulation per
// format exactly the same way).
type devFingerprint struct {
	warpSize          int
	segmentBytes      int
	gatherSectorBytes int
	hasL2             bool
	l2Bytes, l2Line   int
	l2Assoc           int
	l2Frac            float64
}

func fingerprint(d *Device) devFingerprint {
	fp := devFingerprint{
		warpSize:          d.WarpSize,
		segmentBytes:      d.SegmentBytes,
		gatherSectorBytes: d.GatherSectorBytes,
	}
	if d.L2 != nil {
		fp.hasL2 = true
		fp.l2Bytes = d.L2.Bytes
		fp.l2Line = d.L2.LineBytes
		fp.l2Assoc = d.L2.Assoc
		fp.l2Frac = d.L2.RHSFraction
	}
	return fp
}

// planKey identifies a compiled plan: the matrix identity (the format
// pointer — formats are treated as immutable once handed to a kernel)
// plus the device geometry fingerprint.
type planKey struct {
	src any
	fp  devFingerprint
}

// planEntry is one cache slot. once gives single-flight compilation:
// concurrent ranks requesting the same plan block on the first
// compile instead of duplicating it.
type planEntry struct {
	once sync.Once
	plan any
}

// PlanCache memoizes compiled kernel plans. It is safe for concurrent
// use; the distributed runs share one cache across all rank
// goroutines. Entries are evicted in insertion (FIFO) order beyond the
// capacity limit, and can be dropped explicitly with Invalidate when a
// format's backing arrays are about to be mutated or released.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[planKey]*planEntry
	order   []planKey

	hits          atomic.Int64
	misses        atomic.Int64
	compiles      atomic.Int64
	compileNanos  atomic.Int64
	compiledWarps atomic.Int64
}

// DefaultPlanCacheSize bounds the package-default cache; each entry
// holds per-warp counters (~100 B/warp), so the bound exists to cap
// pathological churn, not memory pressure in normal runs.
const DefaultPlanCacheSize = 128

// NewPlanCache returns a cache holding at most max plans (max ≤ 0
// selects DefaultPlanCacheSize).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &PlanCache{max: max, entries: make(map[planKey]*planEntry)}
}

var defaultPlans = NewPlanCache(0)

// Plans returns the package-default plan cache used when
// RunOptions.Plans is nil.
func Plans() *PlanCache { return defaultPlans }

// entry returns the slot for key, reporting whether it already existed.
func (pc *PlanCache) entry(key planKey) (*planEntry, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.entries[key]; ok {
		return e, true
	}
	e := &planEntry{}
	pc.entries[key] = e
	pc.order = append(pc.order, key)
	for len(pc.order) > pc.max {
		old := pc.order[0]
		pc.order = pc.order[1:]
		delete(pc.entries, old)
	}
	return e, false
}

// Invalidate drops every cached plan compiled from the given format
// value (all device geometries), returning the number removed. Call it
// before mutating or releasing a format's backing arrays.
func (pc *PlanCache) Invalidate(format any) int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	removed := 0
	kept := pc.order[:0]
	for _, key := range pc.order {
		if key.src == format {
			delete(pc.entries, key)
			removed++
			continue
		}
		kept = append(kept, key)
	}
	pc.order = kept
	return removed
}

// Reset drops all cached plans and zeroes the statistics.
func (pc *PlanCache) Reset() {
	pc.mu.Lock()
	pc.entries = make(map[planKey]*planEntry)
	pc.order = nil
	pc.mu.Unlock()
	pc.hits.Store(0)
	pc.misses.Store(0)
	pc.compiles.Store(0)
	pc.compileNanos.Store(0)
	pc.compiledWarps.Store(0)
}

// Len returns the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// PlanCacheStats is a point-in-time snapshot of cache activity.
// CompileSeconds is host wall-clock time spent compiling — it lives
// here (and not in the telemetry registry) because the registry is a
// deterministic world: every published value must be identical across
// runs and worker counts, which wall-clock time is not.
type PlanCacheStats struct {
	Hits, Misses   int64
	Compiles       int64
	Entries        int
	CompiledWarps  int64
	CompileSeconds float64
}

// Stats returns a snapshot of the cache counters.
func (pc *PlanCache) Stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:           pc.hits.Load(),
		Misses:         pc.misses.Load(),
		Compiles:       pc.compiles.Load(),
		Entries:        pc.Len(),
		CompiledWarps:  pc.compiledWarps.Load(),
		CompileSeconds: float64(pc.compileNanos.Load()) / 1e9,
	}
}

// publishLookup exports the deterministic cache counters for one
// lookup. Wall-clock compile time is deliberately absent; see
// PlanCacheStats.
func publishLookup(reg *telemetry.Registry, kernel string, d *Device, hit bool, warps int64, extra []telemetry.Label) {
	if reg == nil {
		reg = telemetry.Default()
	}
	lbl := append([]telemetry.Label{
		telemetry.L("kernel", kernel),
		telemetry.L("device", d.Name),
	}, extra...)
	reg.Help("gpu_plan_cache_hits_total", "kernel-plan cache lookups served from cache")
	reg.Help("gpu_plan_cache_misses_total", "kernel-plan cache lookups that compiled a new plan")
	if hit {
		reg.Counter("gpu_plan_cache_hits_total", lbl...).Inc()
	} else {
		reg.Counter("gpu_plan_cache_misses_total", lbl...).Inc()
		reg.Help("gpu_plan_compile_warps_total", "warps analyzed by kernel-plan compilation")
		reg.Counter("gpu_plan_compile_warps_total", lbl...).Add(float64(warps))
		flight.Record(flight.Debug, "gpu.plan_cache_miss", -1, 0, "kernel-plan cache miss compiled a new plan", float64(warps))
	}
}

// planFor returns the compiled plan for (src format, device geometry),
// compiling at most once per cache entry even under concurrent
// lookups. The generic instantiation is resolved by the caller's
// build closure; entries of different element types never share a key
// because the format pointers differ.
func planFor[T matrix.Float](opt RunOptions, d *Device, kernel string, src any, build func() *Plan[T]) *Plan[T] {
	pc := opt.Plans
	if pc == nil {
		pc = defaultPlans
	}
	key := planKey{src: src, fp: fingerprint(d)}
	e, existed := pc.entry(key)
	e.once.Do(func() {
		t0 := time.Now()
		p := build()
		pc.compileNanos.Add(time.Since(t0).Nanoseconds())
		pc.compiles.Add(1)
		pc.compiledWarps.Add(int64(len(p.warps)))
		e.plan = p
	})
	p := e.plan.(*Plan[T])
	// A lookup is a miss iff it created the entry; under concurrency
	// the once body may run on a different goroutine than the creator,
	// but the hit/miss counts stay deterministic either way.
	hit := existed
	if hit {
		pc.hits.Add(1)
	} else {
		pc.misses.Add(1)
	}
	publishLookup(opt.Metrics, kernel, d, hit, int64(len(p.warps)), opt.MetricLabels)
	return p
}
