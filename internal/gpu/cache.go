package gpu

import "fmt"

// CacheConfig describes the simulated on-chip L2 cache.
type CacheConfig struct {
	// Bytes is the total capacity (768 kB on GF100).
	Bytes int
	// LineBytes is the cache-line size (128 B, equal to the coalescing
	// segment).
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// RHSFraction is the fraction of the capacity effectively
	// available for right-hand-side vector reuse. The matrix value and
	// index streams also pass through the real L2 and continuously
	// evict RHS lines; rather than simulating the full streaming
	// pollution (which never produces reuse — every val/col_idx line
	// is touched exactly once), the model shrinks the RHS-visible
	// capacity. 1.0 disables the pollution model; see the
	// DESIGN.md "L2" ablation.
	RHSFraction float64
}

// DefaultL2 returns the GF100 L2 configuration: 768 kB, 128-byte
// lines, 16-way, with half the capacity effectively usable for RHS
// reuse under streaming pollution.
func DefaultL2() *CacheConfig {
	return &CacheConfig{Bytes: 768 << 10, LineBytes: 128, Assoc: 16, RHSFraction: 0.5}
}

// cache is a set-associative LRU cache over line-granular addresses.
// It tracks hits and misses; the spMVM model probes it with RHS
// gather segments.
type cache struct {
	sets     [][]int64 // per set: line tags in LRU order (front = MRU)
	assoc    int
	lineBits uint
	nSets    int64
	hits     int64
	misses   int64
}

// newCache builds the cache simulator from a configuration, applying
// RHSFraction to the capacity and tracking residency at lineBytes
// granularity (the gather sector size, which may be finer than the
// nominal L2 line). Returns nil for a nil config (no cache: every
// probe misses).
func newCache(cfg *CacheConfig, lineBytes int) *cache {
	if cfg == nil {
		return nil
	}
	if cfg.Bytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("gpu: invalid cache config %+v", *cfg))
	}
	frac := cfg.RHSFraction
	if frac <= 0 {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	if lineBytes <= 0 {
		lineBytes = cfg.LineBytes
	}
	capBytes := int(float64(cfg.Bytes) * frac)
	lines := capBytes / lineBytes
	if lines < cfg.Assoc {
		lines = cfg.Assoc
	}
	nSets := lines / cfg.Assoc
	if nSets < 1 {
		nSets = 1
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	c := &cache{
		sets:     make([][]int64, nSets),
		assoc:    cfg.Assoc,
		lineBits: lineBits,
		nSets:    int64(nSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]int64, 0, cfg.Assoc)
	}
	return c
}

// probe looks up the line containing addr, updating LRU state.
// It returns true on a hit. A nil cache always misses.
func (c *cache) probe(addr int64) bool {
	if c == nil {
		return false
	}
	line := addr >> c.lineBits
	set := c.sets[line%c.nSets]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.assoc {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line%c.nSets] = set
	return false
}

// reset clears contents and counters.
func (c *cache) reset() {
	if c == nil {
		return
	}
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.hits, c.misses = 0, 0
}

// hitRate returns hits/(hits+misses), 0 when unused.
func (c *cache) hitRate() float64 {
	if c == nil || c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}
