package gpu

import (
	"testing"

	"pjds/internal/formats"
)

// The simulator's own throughput: how many non-zeros per second the
// transaction-level model processes (this bounds how big a matrix the
// full-scale experiments can afford).
func BenchmarkSimulatorELLPACKR(b *testing.B) {
	m := bandedCSR(20000, 10, 30, 1)
	e := formats.NewELLPACKR(m)
	d := TeslaC2070()
	x := randVec(m.NCols, 2)
	y := make([]float64, m.NRows)
	b.SetBytes(int64(m.Nnz()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunELLPACKR(d, e, y, x, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorPJDS(b *testing.B) {
	m := bandedCSR(20000, 10, 30, 1)
	p, err := formats.NewPJDS(m)
	if err != nil {
		b.Fatal(err)
	}
	d := TeslaC2070()
	x := randVec(m.NCols, 2)
	yp := make([]float64, p.NPad)
	b.SetBytes(int64(m.Nnz()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPJDS(d, p, yp, x, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheProbe(b *testing.B) {
	c := newCache(DefaultL2(), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.probe(int64(i*37) & 0xfffff)
	}
}
