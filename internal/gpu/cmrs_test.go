package gpu

import (
	"testing"

	"pjds/internal/formats"
	"pjds/internal/telemetry"
)

// TestRunCMRSBitIdentical: the CMRS replay accumulates each row in CSR
// element order, so its result is bit-identical to the naive reference
// at every worker count.
func TestRunCMRSBitIdentical(t *testing.T) {
	d := TeslaC2070()
	m := randomCSR(333, 270, 0.04, 71)
	x := randVec(270, 72)
	ref := refMulVec(t, m, x)
	for _, height := range []int{1, 8, 16, 32} {
		c, err := formats.NewCMRS(m, height)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			y := make([]float64, 333)
			if _, err := RunCMRS(d, c, y, x, RunOptions{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if y[i] != ref[i] {
					t.Fatalf("height=%d workers=%d: y[%d] = %x, want %x", height, workers, i, y[i], ref[i])
				}
			}
		}
	}
}

func TestRunCMRSAccumulate(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(200, 3, 12, 73)
	x := randVec(200, 74)
	ref := refMulVec(t, m, x)
	c, err := formats.NewCMRS(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 200)
	for i := range y {
		y[i] = 2.5
	}
	if _, err := RunCMRS(d, c, y, x, RunOptions{Accumulate: true}); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if y[i] != ref[i]+2.5 {
			t.Fatalf("accumulate y[%d] = %g, want %g", i, y[i], ref[i]+2.5)
		}
	}
}

// TestCMRSCoalescing: CMRS streams val/colidx in unit stride with no
// padding. The transaction model still charges the segments a
// misaligned warp-step straddles (strips start at arbitrary CSR
// offsets), so efficiency lands between the worst-case misalignment
// bound and 1 — but unlike ELLPACK-style formats it can never decay
// with row-length skew, because no lane ever streams a padding slot.
func TestCMRSCoalescing(t *testing.T) {
	d := TeslaC2070()
	m := randomCSR(512, 512, 0.03, 75)
	c, err := formats.NewCMRS(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(512, 76)
	y := make([]float64, 512)
	st, err := RunCMRS(d, c, y, x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Worst case per warp-step: val 8·32 B useful over 3 segments and
	// idx 4·32 B over 2 → (256+128)/(5·128) = 0.6.
	if st.CoalescingEfficiency < 0.6-1e-9 || st.CoalescingEfficiency > 1+1e-9 {
		t.Errorf("CMRS coalescing efficiency %.3f outside [0.6, 1]", st.CoalescingEfficiency)
	}
	if st.Nnz != int64(m.Nnz()) {
		t.Errorf("nnz %d, want %d", st.Nnz, m.Nnz())
	}
}

func TestRunCMRSValidation(t *testing.T) {
	d := TeslaC2070()
	m := randomCSR(64, 64, 0.1, 77)
	c, err := formats.NewCMRS(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCMRS(d, c, make([]float64, 64), make([]float64, 5), RunOptions{}); err == nil {
		t.Error("short x accepted")
	}
	if _, err := RunCMRS(d, c, make([]float64, 5), make([]float64, 64), RunOptions{}); err == nil {
		t.Error("short y accepted")
	}
	// Strip height above the warp size cannot be scattered in-warp.
	tall, err := formats.NewCMRS(m, d.WarpSize+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCMRS(d, tall, make([]float64, 64), make([]float64, 64), RunOptions{}); err == nil {
		t.Error("strip height above warp size accepted")
	}
}

// TestCMRSFormatGeometryTelemetry: RunCMRS and RunSlicedELL publish the
// zero-padding/occupancy gauges with their parameter labels.
func TestCMRSFormatGeometryTelemetry(t *testing.T) {
	d := TeslaC2070()
	m := randomCSR(128, 128, 0.05, 79)
	reg := telemetry.NewRegistry()
	c, err := formats.NewCMRS(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 128)
	x := randVec(128, 80)
	if _, err := RunCMRS(d, c, y, x, RunOptions{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	s, err := formats.NewSlicedELL(m, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSlicedELL(d, s, y, x, RunOptions{Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var occCMRS, betaSELL float64
	var sawCMRS, sawSELL bool
	for _, mt := range snap {
		switch mt.Name {
		case "gpu_format_chunk_occupancy":
			if mt.Labels["kernel"] == "CMRS" {
				occCMRS, sawCMRS = mt.Value, true
			}
		case "gpu_format_zero_padding":
			if mt.Labels["sigma"] == "64" {
				betaSELL, sawSELL = mt.Value, true
			}
		}
	}
	if !sawCMRS || occCMRS != 1 {
		t.Errorf("CMRS occupancy gauge: saw=%v value=%g, want 1", sawCMRS, occCMRS)
	}
	if !sawSELL || betaSELL < 0 {
		t.Errorf("SELL zero-padding gauge: saw=%v value=%g", sawSELL, betaSELL)
	}
}
