package gpu

import (
	"fmt"

	"pjds/internal/flight"
	"pjds/internal/telemetry"
)

// ECCInjector is the device-fault hook: the simulator calls ECCEvent
// once per kernel launch (before any work is modelled), and a true
// return aborts the launch with an ECCError. internal/faults provides
// the standard seeded implementation; implementations must be
// deterministic in their own launch counting, never in host time.
type ECCInjector interface {
	ECCEvent(kernel string) bool
}

// ECCError reports a simulated uncorrectable double-bit ECC error on a
// kernel launch. Real GPGPU runtimes poison the context after one of
// these — the paper's §II motivation for ECC-capable Fermi boards —
// so callers must treat the device as lost and fall back to a host
// path (see solver.DevicePJDS).
type ECCError struct {
	Kernel string
}

func (e *ECCError) Error() string {
	return fmt.Sprintf("gpu: uncorrectable double-bit ECC error on %s", e.Kernel)
}

// eccCheck consults the injector for one launch, counting the event
// when it fires.
func eccCheck(opt RunOptions, kernel string) error {
	if opt.Faults == nil || !opt.Faults.ECCEvent(kernel) {
		return nil
	}
	reg := opt.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	reg.Help("gpu_ecc_errors_total", "injected uncorrectable double-bit ECC events")
	lbl := append([]telemetry.Label{telemetry.L("kernel", kernel)}, opt.MetricLabels...)
	reg.Counter("gpu_ecc_errors_total", lbl...).Inc()
	flight.Record(flight.Error, "gpu.ecc", -1, 0, "uncorrectable double-bit ECC event on kernel launch", 0)
	return &ECCError{Kernel: kernel}
}
