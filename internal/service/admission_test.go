package service

import (
	"testing"
	"time"
)

func TestTokenBucketBounds(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := newTokenBucket(10, 2, t0) // 10 tok/s, burst 2

	for i := 0; i < 2; i++ {
		if ok, _ := b.take(t0); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, wait := b.take(t0)
	if ok {
		t.Fatalf("take beyond burst admitted")
	}
	if want := 100 * time.Millisecond; wait != want {
		t.Fatalf("empty-bucket wait = %v, want %v (1 token at 10/s)", wait, want)
	}

	// Refill accrues at rate and is capped at burst.
	if ok, _ := b.take(t0.Add(100 * time.Millisecond)); !ok {
		t.Fatalf("refused after exactly one token accrued")
	}
	if ok, _ := b.take(t0.Add(time.Hour)); !ok {
		t.Fatalf("refused after long idle")
	}
	if lvl := b.level(); lvl > 2 {
		t.Fatalf("bucket overfilled to %g beyond burst 2", lvl)
	}
}

func TestAdmissionQueueBounds(t *testing.T) {
	a := newAdmission(1, 1)

	if full, err := a.admit(nil); full || err != nil {
		t.Fatalf("uncontended admit: full=%v err=%v", full, err)
	}
	if a.inFlight() != 1 {
		t.Fatalf("inFlight = %d, want 1", a.inFlight())
	}

	// Second request queues; third finds the queue full.
	type res struct {
		full bool
		err  error
	}
	done := make(chan struct{})
	got := make(chan res, 1)
	go func() {
		full, err := a.admit(done)
		got <- res{full, err}
	}()
	waitUntil(t, "waiter queued", func() bool { return a.queueDepth() == 1 })
	if full, err := a.admit(done); !full || err != nil {
		t.Fatalf("over-queue admit: full=%v err=%v, want queueFull", full, err)
	}

	// Releasing the slot hands it to the waiter.
	a.release()
	r := <-got
	if r.full || r.err != nil {
		t.Fatalf("queued admit after release: %+v", r)
	}
	if a.queueDepth() != 0 || a.inFlight() != 1 {
		t.Fatalf("after handoff: queue=%d inflight=%d", a.queueDepth(), a.inFlight())
	}
	a.release()
}

func TestAdmissionAbortWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	if full, err := a.admit(nil); full || err != nil {
		t.Fatalf("admit: full=%v err=%v", full, err)
	}
	done := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, err := a.admit(done)
		got <- err
	}()
	waitUntil(t, "waiter queued", func() bool { return a.queueDepth() == 1 })
	close(done) // deadline expired / client gone while queued
	if err := <-got; err != errAdmissionAborted {
		t.Fatalf("aborted admit: err=%v, want errAdmissionAborted", err)
	}
	if a.queueDepth() != 0 {
		t.Fatalf("aborted waiter still counted: queue=%d", a.queueDepth())
	}
	a.release()
}

func TestLatRingQuantiles(t *testing.T) {
	r := newLatRing()
	if p50, p99 := r.quantiles(); p50 != 0 || p99 != 0 {
		t.Fatalf("empty ring: (%g, %g)", p50, p99)
	}
	for i := 1; i <= 100; i++ {
		r.observe(float64(i))
	}
	p50, p99 := r.quantiles()
	if p50 < 45 || p50 > 55 {
		t.Fatalf("p50 = %g, want ≈50", p50)
	}
	if p99 < 95 || p99 > 100 {
		t.Fatalf("p99 = %g, want ≈99", p99)
	}
	if r.total() != 100 {
		t.Fatalf("total = %d, want 100", r.total())
	}

	// Overflow wraps without growing.
	for i := 0; i < 2*latRingSize; i++ {
		r.observe(1)
	}
	if p50, _ := r.quantiles(); p50 != 1 {
		t.Fatalf("post-wrap p50 = %g, want 1", p50)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkAdmit measures the uncontended admission fast path — one
// token-bucket take plus one execution-slot seize and release. The
// bench.sh pr9 gate holds this to 0 allocs/op: the hot path of every
// request must not create garbage under thousands of concurrent calls.
func BenchmarkAdmit(b *testing.B) {
	a := newAdmission(4, 16)
	tb := newTokenBucket(1e12, 1e12, time.Unix(0, 0))
	now := time.Unix(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := tb.take(now); !ok {
			b.Fatalf("bucket refused")
		}
		full, err := a.admit(nil)
		if full || err != nil {
			b.Fatalf("admit: full=%v err=%v", full, err)
		}
		a.release()
	}
}
