package service

import "time"

// AdmitBench exposes the admission fast path to cmd/spmvd -bench,
// which measures it with testing.Benchmark and gates it at 0
// allocs/op in BENCH_PR9.json (every request crosses this path; under
// swarm load it must not create garbage). The internal/service
// benchmark BenchmarkAdmit measures the same cycle in-package.
type AdmitBench struct {
	a   *admission
	tb  *tokenBucket
	now time.Time
}

// NewAdmitBench builds the steady-state fixture: a warm token bucket
// that never empties and an uncontended admission gate.
func NewAdmitBench() *AdmitBench {
	return &AdmitBench{
		a:   newAdmission(4, 16),
		tb:  newTokenBucket(1e12, 1e12, time.Unix(0, 0)),
		now: time.Unix(1, 0),
	}
}

// Cycle runs one uncontended admission round trip: token-bucket take,
// execution-slot seize, release. It reports false if any stage
// unexpectedly sheds (a benchmark setup bug, not a measurement).
func (ab *AdmitBench) Cycle() bool {
	if ok, _ := ab.tb.take(ab.now); !ok {
		return false
	}
	full, err := ab.a.admit(nil)
	if full || err != nil {
		return false
	}
	ab.a.release()
	return true
}
