package service

import (
	"sync/atomic"
	"time"

	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/health"
)

// Tier is one rung of the degradation ladder. The service walks down
// it under stress and back up as the health window clears:
//
//	TierDevice — requests run on a simulated GPU from the pool; this
//	  is the paper's fast path, bounded by the Eq. 1 device bandwidth.
//	TierHost   — every device has taken an uncorrectable ECC error
//	  (the PR 4 fault signal); requests run the hostkernel CPU path,
//	  the hybrid fallback of Schubert et al., bit-identical but slower.
//	TierReject — the PR 6 health engine reports fail-grade trouble
//	  (divergence, rank failures, …); new work is shed with 503 until
//	  the rolling window clears. Admission-queue overload never reaches
//	  this rung — it sheds per-request with 429 instead.
type Tier int32

const (
	TierDevice Tier = iota
	TierHost
	TierReject
)

// String returns the lowercase tier name.
func (t Tier) String() string {
	switch t {
	case TierDevice:
		return "device"
	case TierHost:
		return "host"
	case TierReject:
		return "reject"
	}
	return "unknown"
}

// device is one simulated accelerator of the pool. lost latches after
// an uncorrectable ECC error: real GPGPU runtimes poison the context
// (the paper's §II ECC motivation), so the device never rejoins.
type device struct {
	id      int
	dev     *gpu.Device
	inj     gpu.ECCInjector // nil = healthy board
	lost    atomic.Bool
	applies atomic.Int64
}

// ladder evaluates the current tier, caching the (mutex-taking)
// health report briefly so per-request checks stay cheap under the
// swarm's thousands of concurrent calls.
type ladder struct {
	eng     *health.Engine // nil = never reject
	healthy *atomic.Int32  // surviving device count (owned by Server)

	cached  atomic.Int32 // last evaluated Tier
	checked atomic.Int64 // unix nanos of last health evaluation
}

// ladderTTL bounds how stale the cached health verdict may be.
const ladderTTL = 250 * time.Millisecond

func newLadder(eng *health.Engine, healthy *atomic.Int32) *ladder {
	return &ladder{eng: eng, healthy: healthy}
}

// tier returns the current rung. Device loss is evaluated on every
// call (an atomic load); the health verdict is re-evaluated at most
// every ladderTTL.
func (l *ladder) tier(now time.Time) Tier {
	if l.eng != nil {
		at := l.checked.Load()
		if now.UnixNano()-at > int64(ladderTTL) && l.checked.CompareAndSwap(at, now.UnixNano()) {
			prev := Tier(l.cached.Load())
			next := TierDevice
			if l.eng.Report().Status == health.Fail {
				next = TierReject
			}
			l.cached.Store(int32(next))
			if prev == TierReject && next != TierReject {
				flight.Record(flight.Info, "service.breaker_close", -1, 0, "health window cleared, admitting again", 0)
			} else if prev != TierReject && next == TierReject {
				flight.Record(flight.Warn, "service.breaker_open", -1, 0, "fail-grade health, shedding all new work", 0)
			}
		}
		if Tier(l.cached.Load()) == TierReject {
			return TierReject
		}
	}
	if l.healthy.Load() == 0 {
		return TierHost
	}
	return TierDevice
}
