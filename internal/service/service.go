// Package service is the multi-tenant spMVM/solve service in front of
// the simulated GPU fleet: a long-running server that accepts matrix
// uploads (streamed through the parallel MatrixMarket reader) and
// spMVM / CG-solve requests from many concurrent tenants over a pool
// of simulated devices with a shared cross-tenant plan cache.
//
// The robustness core is the request lifecycle:
//
//   - admission: per-tenant token-bucket quotas and a bounded waiter
//     queue; both shed with 429 + Retry-After instead of letting
//     backlog grow without bound (backpressure, not collapse);
//   - deadlines: the client deadline travels from the HTTP header
//     through the context into every kernel application — solves are
//     cancelled cooperatively between iterations, never mid-kernel;
//   - degradation ladder: device → hostkernel → reject (see Tier),
//     driven by the ECC fault signals and the rolling-window health
//     engine. The device and host paths sum each row in stored column
//     order, so a downgrade never changes a single result bit;
//   - graceful drain: stop admitting (503 + Retry-After), let
//     in-flight work finish inside a grace window, checkpoint and
//     cancel what remains, then flush telemetry/flight/ledger state.
//
// Every quantity the policies act on maps back to the paper: the
// device pool's aggregate Eq. 1 bandwidth bounds useful concurrency
// (admission), exposed wait beyond it is the §III-A overlap question
// (queueing), and the host fallback is the hybrid CPU path of
// Schubert et al. See DESIGN.md for the full map.
package service

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pjds/internal/core"
	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/health"
	"pjds/internal/hostkernel"
	"pjds/internal/matrix"
	"pjds/internal/solver"
	"pjds/internal/telemetry"
	"pjds/internal/tuner"
)

// errAdmissionAborted reports a request whose deadline expired (or
// whose client vanished) while it was still queued for an execution
// slot.
var errAdmissionAborted = errors.New("service: request aborted while queued")

// ErrUnknownMatrix reports a request naming a matrix that was never
// uploaded.
var ErrUnknownMatrix = errors.New("service: unknown matrix")

// Config parameterizes a Server. The zero value of every field
// selects a sensible default (see New).
type Config struct {
	// Devices is the simulated accelerator pool size (default 4);
	// Device is the board prototype (default gpu.TeslaC2070()).
	Devices int
	Device  *gpu.Device
	// MaxInFlight bounds concurrently executing requests (default
	// Devices — one request per board keeps each kernel replay at full
	// Eq. 1 bandwidth instead of timesharing it). QueueDepth bounds
	// the admission backlog beyond that (default 4×MaxInFlight).
	MaxInFlight int
	QueueDepth  int
	// TenantRate / TenantBurst parameterize every tenant's token
	// bucket (default 100 req/s, burst 200).
	TenantRate  float64
	TenantBurst float64
	// DefaultDeadline applies when a request carries no deadline of
	// its own (default 30s).
	DefaultDeadline time.Duration
	// MaxUploadBytes bounds one matrix upload (default 1 GiB).
	MaxUploadBytes int64
	// DeviceFaults returns the ECC injector for device i (nil = all
	// boards healthy). faults.Plan.DeviceFor is the standard source.
	DeviceFaults func(device int) gpu.ECCInjector
	// ApplyDelay adds synthetic per-application latency (cancellation-
	// aware). Zero in production; the chaos swarm and the drain tests
	// use it to create controllable overload.
	ApplyDelay time.Duration
	// TuningDB, when non-empty, enables tune-on-upload: the first
	// upload of each distinct matrix (by content fingerprint) runs the
	// (C, σ) auto-tuner and persists the winner at this JSONL path;
	// re-uploads and restarts answer from the DB without re-sweeping.
	// Empty disables tuning entirely.
	TuningDB string
	// Registry receives the service telemetry (nil = telemetry.Default()).
	Registry *telemetry.Registry
	// Health, when set, drives the reject rung of the ladder.
	Health *health.Engine
	// Now is the service clock (nil = time.Now; tests inject one).
	Now func() time.Time
}

// MatrixInfo describes one stored matrix.
type MatrixInfo struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	Nnz  int64  `json:"nnz"`
	// Shared reports that an upload deduplicated against an existing
	// entry (same content fingerprint): the tenants share one pJDS
	// layout and one cached kernel plan.
	Shared bool `json:"shared,omitempty"`
	// Tuning results (present only when Config.TuningDB is set):
	// the auto-tuned winner's label (e.g. "SELL-8-256"), its layout
	// parameters, the ns/nnz the tuner measured for it, and whether
	// the answer came from the persisted DB instead of a fresh sweep.
	TunedFormat    string  `json:"tuned_format,omitempty"`
	TunedC         int     `json:"tuned_c,omitempty"`
	TunedSigma     int     `json:"tuned_sigma,omitempty"`
	TunedHeight    int     `json:"tuned_height,omitempty"`
	TunedNsPerNnz  float64 `json:"tuned_ns_per_nnz,omitempty"`
	TuningCacheHit bool    `json:"tuning_cache_hit,omitempty"`
}

// matrixEntry is one stored matrix: the pJDS-permuted operator shared
// by every tenant, plus a freelist of host kernels (a PJDSKernel
// carries per-call state, so concurrent requests must not share one).
type matrixEntry struct {
	info  MatrixInfo
	op    *solver.PermutedPJDS
	tuned *tuner.Entry // nil unless Config.TuningDB tuned this matrix
	kmu   sync.Mutex
	ks    []*hostkernel.PJDSKernel
}

// kernel takes a host kernel from the freelist, building one when the
// list is empty (bounded in practice by MaxInFlight).
func (e *matrixEntry) kernel() *hostkernel.PJDSKernel {
	e.kmu.Lock()
	if n := len(e.ks); n > 0 {
		k := e.ks[n-1]
		e.ks = e.ks[:n-1]
		e.kmu.Unlock()
		return k
	}
	e.kmu.Unlock()
	return hostkernel.NewPJDS(e.op.P, hostkernel.Options{})
}

func (e *matrixEntry) releaseKernel(k *hostkernel.PJDSKernel) {
	e.kmu.Lock()
	e.ks = append(e.ks, k)
	e.kmu.Unlock()
}

// tenant is one caller's live state.
type tenant struct {
	name     string
	bucket   *tokenBucket
	lat      *latRing
	admitted atomic.Int64
	rejected atomic.Int64
	inflight atomic.Int64
}

// Server is the multi-tenant spMVM service.
type Server struct {
	cfg   Config
	reg   *telemetry.Registry
	plans *gpu.PlanCache
	adm   *admission
	lad   *ladder

	devPool chan *device
	devices []*device
	healthy atomic.Int32

	mu       sync.RWMutex
	matrices map[string]*matrixEntry
	tenants  map[string]*tenant

	draining  atomic.Bool
	baseCtx   context.Context
	cancelAll context.CancelFunc

	start        time.Time
	lat          *latRing
	served       atomic.Int64
	checkpointed atomic.Int64
	fallbacks    atomic.Int64
}

// New builds a Server. It is ready to serve immediately; call Drain
// before process exit for a graceful stop.
func New(cfg Config) *Server {
	if cfg.Devices <= 0 {
		cfg.Devices = 4
	}
	if cfg.Device == nil {
		cfg.Device = gpu.TeslaC2070()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = cfg.Devices
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxInFlight
	}
	if cfg.TenantRate <= 0 {
		cfg.TenantRate = 100
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 200
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		plans:    gpu.NewPlanCache(0),
		adm:      newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		matrices: map[string]*matrixEntry{},
		tenants:  map[string]*tenant{},
		start:    cfg.Now(),
		lat:      newLatRing(),
	}
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	s.devPool = make(chan *device, cfg.Devices)
	for i := 0; i < cfg.Devices; i++ {
		d := &device{id: i, dev: cfg.Device}
		if cfg.DeviceFaults != nil {
			d.inj = cfg.DeviceFaults(i)
		}
		s.devices = append(s.devices, d)
		s.devPool <- d
	}
	s.healthy.Store(int32(cfg.Devices))
	s.lad = newLadder(cfg.Health, &s.healthy)
	s.reg.Help("service_requests_total", "service requests by tenant, kind and HTTP code")
	s.reg.Help("service_rejections_total", "requests shed at admission by reason")
	s.reg.Help("service_request_seconds", "end-to-end latency of successful requests")
	s.reg.Help("service_device_lost_total", "devices latched lost after an uncorrectable ECC error")
	s.reg.Help("service_host_fallbacks_total", "applications served by the host kernel instead of a device")
	s.reg.Help("service_checkpoints_total", "in-flight solves checkpointed by drain or deadline")
	s.reg.Help("service_tuning_lag_ratio", "measured spMVM ns/nnz over the tuning-DB prediction, per matrix")
	return s
}

// Close releases pooled resources after the server is fully drained.
func (s *Server) Close() {
	s.cancelAll()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.matrices {
		for _, k := range e.ks {
			k.Close()
		}
		e.ks = nil
		e.op.Close()
	}
}

// tenantFor returns (creating on first sight) the named tenant.
func (s *Server) tenantFor(name string) *tenant {
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t != nil {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.tenants[name]; t != nil {
		return t
	}
	t = &tenant{
		name:   name,
		bucket: newTokenBucket(s.cfg.TenantRate, s.cfg.TenantBurst, s.cfg.Now()),
		lat:    newLatRing(),
	}
	s.tenants[name] = t
	return t
}

// AddMatrix streams a MatrixMarket body into the store and returns
// its descriptor. Uploads deduplicate on a content fingerprint, so
// two tenants uploading the same matrix share one pJDS layout and one
// compiled kernel plan (the cross-tenant plan cache of ROADMAP #2).
// Only square matrices are accepted — the permuted-basis operator and
// the CG solver require them.
func (s *Server) AddMatrix(name string, r io.Reader) (MatrixInfo, error) {
	csr, _, err := matrix.ReadMatrixMarketOpt[float64](io.LimitReader(r, s.cfg.MaxUploadBytes), matrix.ConvertOptions{})
	if err != nil {
		return MatrixInfo{}, fmt.Errorf("service: upload %q: %w", name, err)
	}
	if csr.NRows != csr.NCols {
		return MatrixInfo{}, fmt.Errorf("service: upload %q: %dx%d matrix is not square", name, csr.NRows, csr.NCols)
	}
	id := contentFingerprint(csr)
	s.mu.Lock()
	if e, ok := s.matrices[id]; ok {
		info := e.info
		s.mu.Unlock()
		info.Shared = true
		if e.tuned != nil {
			info.TuningCacheHit = true // the shared entry's sweep is reused
		}
		return info, nil
	}
	s.mu.Unlock()
	// Build outside the lock: pJDS construction is the expensive part
	// and concurrent distinct uploads should not serialize.
	op, err := solver.NewPermutedPJDS(csr, core.Options{})
	if err != nil {
		return MatrixInfo{}, fmt.Errorf("service: upload %q: %w", name, err)
	}
	e := &matrixEntry{
		info: MatrixInfo{ID: id, Name: name, Rows: csr.NRows, Cols: csr.NCols, Nnz: int64(len(csr.Val))},
		op:   op,
	}
	if s.cfg.TuningDB != "" {
		// Tune once per content fingerprint: re-uploads of the same
		// matrix (and restarts against the same DB) answer from the
		// persisted winner instead of re-sweeping the (C, σ) grid.
		te, hit, terr := tuner.TuneOrLookup(csr, name, s.cfg.TuningDB, tuner.Config{
			Device:  s.cfg.Device,
			Workers: 1,
			Metrics: s.reg,
			Now:     s.cfg.Now,
		})
		if terr != nil {
			op.Close()
			return MatrixInfo{}, fmt.Errorf("service: upload %q: tuning: %w", name, terr)
		}
		e.tuned = te
		e.info.TunedFormat = te.Winner.Label()
		e.info.TunedC = te.Winner.C
		e.info.TunedSigma = te.Winner.Sigma
		e.info.TunedHeight = te.Winner.Height
		e.info.TunedNsPerNnz = te.Winner.MeasuredNsPerNnz
		e.info.TuningCacheHit = hit
	}
	e.ks = append(e.ks, op.K) // seed the freelist with the operator's own kernel
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.matrices[id]; ok { // lost the build race
		info := prev.info
		info.Shared = true
		if prev.tuned != nil {
			info.TuningCacheHit = true
		}
		op.Close()
		return info, nil
	}
	s.matrices[id] = e
	s.reg.Gauge("service_matrices").Set(float64(len(s.matrices)))
	return e.info, nil
}

// lookup resolves a matrix ID.
func (s *Server) lookup(id string) (*matrixEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.matrices[id]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownMatrix, id)
}

// Matrices lists the store in upload order (by name, for status views).
func (s *Server) Matrices() []MatrixInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]MatrixInfo, 0, len(s.matrices))
	for _, e := range s.matrices {
		out = append(out, e.info)
	}
	return out
}

// acquireDevice takes a healthy device from the pool without
// blocking; nil means run on the host tier (all devices lost, or all
// busy beyond MaxInFlight).
func (s *Server) acquireDevice() *device {
	for {
		select {
		case d := <-s.devPool:
			if d.lost.Load() {
				// A board that died while pooled: drop it on the floor.
				continue
			}
			return d
		default:
			return nil
		}
	}
}

// releaseDevice returns a surviving device to the pool.
func (s *Server) releaseDevice(d *device) {
	if d == nil || d.lost.Load() {
		return
	}
	s.devPool <- d
}

// tripDevice latches d lost after an uncorrectable ECC error.
func (s *Server) tripDevice(d *device) {
	if d.lost.Swap(true) {
		return
	}
	n := s.healthy.Add(-1)
	s.reg.Counter("service_device_lost_total", telemetry.Li("device", d.id)).Inc()
	flight.Record(flight.Error, "service.device_lost", d.id, 0,
		"uncorrectable ECC error poisoned the device context; requests fall back to the host kernel", float64(n))
}

// applyOp is the per-request operator: device while one is held and
// healthy, host kernel after ECC loss — bit-identical either way. The
// context is consulted before every application, so a deadline or a
// drain cancels a solve cooperatively between kernel replays.
type applyOp struct {
	ctx context.Context
	s   *Server
	e   *matrixEntry
	d   *device
	k   *hostkernel.PJDSKernel
}

// Dim implements solver.Operator.
func (o *applyOp) Dim() int { return o.e.info.Rows }

// Apply implements solver.Operator in the permuted basis.
func (o *applyOp) Apply(yp, xp []float64) error {
	if err := o.ctx.Err(); err != nil {
		return err
	}
	if d := o.s.cfg.ApplyDelay; d > 0 {
		t := time.NewTimer(d)
		select {
		case <-o.ctx.Done():
			t.Stop()
			return o.ctx.Err()
		case <-t.C:
		}
	}
	if o.d != nil && !o.d.lost.Load() {
		_, err := gpu.RunPJDS(o.d.dev, o.e.op.P, yp, xp, gpu.RunOptions{
			Workers: 1,
			Plans:   o.s.plans,
			Metrics: o.s.reg,
			MetricLabels: []telemetry.Label{
				telemetry.Li("rank", o.d.id), // rank = device: per-board rows on the dashboards
			},
			Faults: o.d.inj,
		})
		if err == nil {
			o.d.applies.Add(1)
			return nil
		}
		var ecc *gpu.ECCError
		if !errors.As(err, &ecc) {
			return err
		}
		// Walk one rung down the ladder and keep going: both paths sum
		// each row in stored column order, so the result bits are
		// unchanged (verified by the swarm's digest gate).
		o.s.tripDevice(o.d)
		o.d = nil
	}
	o.s.fallbacks.Add(1)
	o.s.reg.Counter("service_host_fallbacks_total").Inc()
	return o.k.MulVec(yp, xp)
}

// tierName reports the rung the request ended on ("host" when the
// device was lost mid-request and the host kernel finished the work).
func (o *applyOp) tierName() string {
	if o.d != nil {
		return "device"
	}
	return "host"
}

// close releases the operator's held resources.
func (o *applyOp) close() {
	o.s.releaseDevice(o.d)
	o.e.releaseKernel(o.k)
	o.d, o.k = nil, nil
}

// newApplyOp assembles the per-request operator at the current ladder
// tier.
func (s *Server) newApplyOp(ctx context.Context, e *matrixEntry) *applyOp {
	op := &applyOp{ctx: ctx, s: s, e: e, k: e.kernel()}
	if s.lad.tier(s.cfg.Now()) == TierDevice {
		op.d = s.acquireDevice()
	}
	return op
}

// SpMVResult is one y = A·x outcome.
type SpMVResult struct {
	Digest string    `json:"digest"`
	Tier   string    `json:"tier"`
	Y      []float64 `json:"y,omitempty"`
}

// SpMV computes y = A·x for a stored matrix. x must have the matrix
// dimension; the caller owns the admission slot already.
func (s *Server) SpMV(ctx context.Context, e *matrixEntry, x []float64, wantY bool) (SpMVResult, error) {
	n := e.info.Rows
	if len(x) != n {
		return SpMVResult{}, fmt.Errorf("service: |x|=%d on %dx%d matrix", len(x), n, n)
	}
	op := s.newApplyOp(ctx, e)
	defer op.close()
	xp := e.op.Enter(make([]float64, n), x)
	yp := make([]float64, n)
	t0 := time.Now()
	if err := op.Apply(yp, xp); err != nil {
		return SpMVResult{}, err
	}
	s.recordTuningLag(e, time.Since(t0))
	y := e.op.Leave(make([]float64, n), yp)
	res := SpMVResult{Digest: DigestVector(y), Tier: op.tierName()}
	if wantY {
		res.Y = y
	}
	return res, nil
}

// SolveResult is one CG solve outcome. When a deadline or drain
// cancelled the solve, Checkpointed is true and the result carries
// the state of the interrupted iteration (the client can verify a
// resumed solve against Digest).
type SolveResult struct {
	Digest       string  `json:"digest"`
	Tier         string  `json:"tier"`
	Iterations   int     `json:"iterations"`
	Residual     float64 `json:"residual"`
	Converged    bool    `json:"converged"`
	Checkpointed bool    `json:"checkpointed,omitempty"`
}

// Solve runs CG on a stored matrix. On cooperative cancellation
// (deadline, client gone, drain) it returns the checkpointed state of
// the current iterate instead of an error: the work done is not
// discarded, matching the recoverable-solver semantics of PR 4.
func (s *Server) Solve(ctx context.Context, e *matrixEntry, b []float64, tol float64, maxIter int) (SolveResult, error) {
	n := e.info.Rows
	if len(b) != n {
		return SolveResult{}, fmt.Errorf("service: |b|=%d on %dx%d matrix", len(b), n, n)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	op := s.newApplyOp(ctx, e)
	defer op.close()
	bp := e.op.Enter(make([]float64, n), b)
	xp := make([]float64, n)
	cg, err := solver.CG(op, xp, bp, tol, maxIter)
	x := e.op.Leave(make([]float64, n), xp)
	res := SolveResult{
		Digest:     DigestVector(x),
		Tier:       op.tierName(),
		Iterations: cg.Iterations,
		Residual:   cg.Residual,
		Converged:  err == nil,
	}
	if res.Residual == 0 && len(cg.History) > 0 {
		res.Residual = cg.History[len(cg.History)-1]
	}
	if err != nil {
		if ctx.Err() != nil {
			// Cooperative cancellation: checkpoint the interrupted
			// iterate rather than discarding the work. The digest lets
			// the client verify a resumed solve bit-for-bit.
			res.Checkpointed = true
			s.checkpointed.Add(1)
			s.reg.Counter("service_checkpoints_total").Inc()
			flight.Record(flight.Warn, "service.solve_checkpoint", -1, 0,
				"in-flight solve checkpointed on cancellation", float64(res.Iterations))
			return res, ctx.Err()
		}
		if errors.Is(err, solver.ErrNotConverged) {
			// Hitting the client's iteration budget is a bounded-work
			// outcome, not a failure: the body says Converged=false and
			// the iterate is still the deterministic result of exactly
			// maxIter steps.
			return res, nil
		}
		return res, err
	}
	return res, nil
}

// recordTuningLag publishes how far a served application ran from its
// tuning-DB prediction: measured ns/nnz over the winner's tuned
// ns/nnz, as the per-matrix gauge service_tuning_lag_ratio. The
// health engine warns past 1.2× (signal "tuning_lag"), catching both
// stale DB entries and slowdowns the tuner never saw (contention,
// ApplyDelay, host fallback). No-op when the matrix was not tuned.
func (s *Server) recordTuningLag(e *matrixEntry, elapsed time.Duration) {
	if e.tuned == nil || e.tuned.Winner.MeasuredNsPerNnz <= 0 || e.info.Nnz <= 0 {
		return
	}
	measured := float64(elapsed.Nanoseconds()) / float64(e.info.Nnz)
	s.reg.Gauge("service_tuning_lag_ratio", telemetry.L("matrix", e.info.Name)).
		Set(measured / e.tuned.Winner.MeasuredNsPerNnz)
}

// Draining reports whether the server has stopped admitting.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain stops admission (idempotent). In-flight requests keep
// running; new ones get 503 + Retry-After.
func (s *Server) StartDrain() {
	if s.draining.Swap(true) {
		return
	}
	flight.Record(flight.Warn, "service.drain_start", -1, 0, "drain started: admission closed", float64(s.adm.inFlight()))
}

// DrainReport summarizes a completed drain.
type DrainReport struct {
	InFlightAtStart int64         `json:"in_flight_at_start"`
	Checkpointed    int64         `json:"checkpointed"`
	Graceful        bool          `json:"graceful"`
	Waited          time.Duration `json:"-"`
	WaitedSeconds   float64       `json:"waited_seconds"`
}

// busy reports whether any request is executing or queued.
func (s *Server) busy() bool {
	return s.adm.inFlight() > 0 || s.adm.queueDepth() > 0
}

// Drain performs the full graceful stop: close admission, wait up to
// grace for in-flight requests, then cancel the stragglers (they
// checkpoint cooperatively) and wait for them to unwind. After Drain
// returns no request is running and the caller can flush
// ledger/flight artifacts and exit 0.
func (s *Server) Drain(grace time.Duration) DrainReport {
	t0 := time.Now()
	rep := DrainReport{InFlightAtStart: s.adm.inFlight() + s.adm.queueDepth()}
	s.StartDrain()
	if grace <= 0 {
		grace = 5 * time.Second
	}
	deadline := t0.Add(grace)
	for s.busy() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if s.busy() {
		before := s.checkpointed.Load()
		s.cancelAll()
		for s.busy() {
			time.Sleep(2 * time.Millisecond)
		}
		rep.Checkpointed = s.checkpointed.Load() - before
	} else {
		rep.Graceful = true
	}
	rep.Waited = time.Since(t0)
	rep.WaitedSeconds = rep.Waited.Seconds()
	flight.Record(flight.Info, "service.drain_done", -1, 0, "drain complete", rep.WaitedSeconds)
	return rep
}

// Quantiles returns the global (p50, p99) request latency in seconds.
func (s *Server) Quantiles() (p50, p99 float64) { return s.lat.quantiles() }

// Served returns the number of successful requests.
func (s *Server) Served() int64 { return s.served.Load() }

// DigestVector hashes the float64 bit patterns of y (little-endian),
// so two vectors digest equal exactly when they are bit-identical —
// the same contract as the hostbench digest lines.
func DigestVector(y []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range y {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// contentFingerprint derives the dedup identity of a matrix from its
// full content (dimensions, structure, values), not its name: two
// tenants uploading the same matrix under different names share one
// entry.
func contentFingerprint(m *matrix.CSR[float64]) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	put(uint64(m.NRows))
	put(uint64(m.NCols))
	for _, p := range m.RowPtr {
		put(uint64(p))
	}
	for _, c := range m.ColIdx {
		put(uint64(c))
	}
	for _, v := range m.Val {
		put(math.Float64bits(v))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
