package service

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"pjds/internal/telemetry"
)

// Request headers understood by the service API.
const (
	// HeaderTenant names the caller; requests without it share the
	// "anonymous" tenant (and its quota).
	HeaderTenant = "X-Tenant"
	// HeaderDeadlineMs bounds the request end to end, queue wait
	// included. The value propagates into the per-application context,
	// so an expired deadline cancels a solve between kernel replays.
	HeaderDeadlineMs = "X-Deadline-Ms"
)

// maxBodyBytes bounds one request body (vectors are O(n) float64s).
const maxBodyBytes = 64 << 20

// APIHandler returns the service API:
//
//	POST /v1/matrices  upload a MatrixMarket body, returns MatrixInfo
//	GET  /v1/matrices  list stored matrices
//	POST /v1/spmv      {"matrix": id, "x": [...] | "seed": n} → SpMVResult
//	POST /v1/solve     {"matrix": id, "b"|"seed", "tol", "max_iter"} → SolveResult
//	GET  /v1/status    service-wide state (tier, queue, latency, drain)
//	GET  /tenants.json per-tenant table for the dashboard and spmvtop
func (s *Server) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/matrices", s.handleMatrices)
	mux.HandleFunc("/v1/spmv", s.handleSpMV)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/tenants.json", s.handleTenants)
	return mux
}

// RegisterHTTP contributes the API to every telemetry.Serve endpoint,
// so the service shares one port with /metrics, /dashboard, /healthz,
// /spans and the rest of the observability surface.
func (s *Server) RegisterHTTP() {
	h := s.APIHandler()
	telemetry.RegisterHandler("/v1/", h)
	telemetry.RegisterHandler("/tenants.json", h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error        string  `json:"error"`
	Reason       string  `json:"reason"`
	RetryAfterMs float64 `json:"retry_after_ms,omitempty"`
}

// reject sheds one request: counts it, stamps Retry-After (whole
// seconds, as HTTP requires, never below 1) plus the precise
// X-Retry-After-Ms, and writes the JSON error body.
func (s *Server) reject(w http.ResponseWriter, t *tenant, kind, reason string, code int, retryAfter time.Duration) {
	t.rejected.Add(1)
	s.reg.Counter("service_rejections_total",
		telemetry.L("tenant", t.name), telemetry.L("reason", reason)).Inc()
	s.reg.Counter("service_requests_total",
		telemetry.L("tenant", t.name), telemetry.L("kind", kind), telemetry.Li("code", code)).Inc()
	if retryAfter > 0 {
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.Header().Set("X-Retry-After-Ms", strconv.FormatFloat(retryAfter.Seconds()*1000, 'f', 3, 64))
	}
	writeJSON(w, code, errorBody{Error: http.StatusText(code), Reason: reason, RetryAfterMs: retryAfter.Seconds() * 1000})
}

// admitted is a live, admitted request: the context carries the
// deadline and the server drain signal, finish must be called exactly
// once.
type admitted struct {
	t      *tenant
	ctx    context.Context
	finish func()
}

// admit walks one request through the whole admission gate — drain
// check, circuit breaker, tenant quota, bounded queue — and reports
// whether it holds an execution slot. On shed it has already written
// the response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, kind string) (admitted, bool) {
	t := s.tenantFor(tenantName(r))
	now := s.cfg.Now()
	if s.draining.Load() {
		s.reject(w, t, kind, "draining", http.StatusServiceUnavailable, 5*time.Second)
		return admitted{}, false
	}
	if s.lad.tier(now) == TierReject {
		s.reject(w, t, kind, "breaker_open", http.StatusServiceUnavailable, 5*time.Second)
		return admitted{}, false
	}
	if ok, wait := t.bucket.take(now); !ok {
		s.reject(w, t, kind, "quota", http.StatusTooManyRequests, wait)
		return admitted{}, false
	}
	deadline := s.cfg.DefaultDeadline
	if h := r.Header.Get(HeaderDeadlineMs); h != "" {
		ms, err := strconv.ParseFloat(h, 64)
		if err != nil || ms <= 0 {
			s.reg.Counter("service_requests_total",
				telemetry.L("tenant", t.name), telemetry.L("kind", kind), telemetry.Li("code", http.StatusBadRequest)).Inc()
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "Bad Request", Reason: "invalid " + HeaderDeadlineMs})
			return admitted{}, false
		}
		deadline = time.Duration(ms * float64(time.Millisecond))
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	stop := context.AfterFunc(s.baseCtx, cancel) // drain cancellation reaches every request
	release := func() {
		stop()
		cancel()
	}
	full, err := s.adm.admit(ctx.Done())
	if full {
		release()
		s.reject(w, t, kind, "queue_full", http.StatusTooManyRequests, 500*time.Millisecond)
		return admitted{}, false
	}
	if err != nil {
		release()
		s.reject(w, t, kind, "deadline_in_queue", http.StatusGatewayTimeout, 0)
		return admitted{}, false
	}
	t.admitted.Add(1)
	t.inflight.Add(1)
	return admitted{t: t, ctx: ctx, finish: func() {
		t.inflight.Add(-1)
		s.adm.release()
		release()
	}}, true
}

// finishOK records one successful request.
func (s *Server) finishOK(a admitted, kind string, elapsed time.Duration) {
	sec := elapsed.Seconds()
	a.t.lat.observe(sec)
	s.lat.observe(sec)
	s.served.Add(1)
	s.reg.Counter("service_requests_total",
		telemetry.L("tenant", a.t.name), telemetry.L("kind", kind), telemetry.Li("code", http.StatusOK)).Inc()
	s.reg.Gauge("service_request_seconds").Set(sec)
}

func tenantName(r *http.Request) string {
	if t := r.Header.Get(HeaderTenant); t != "" {
		return t
	}
	return "anonymous"
}

func (s *Server) handleMatrices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		infos := s.Matrices()
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		writeJSON(w, http.StatusOK, infos)
	case http.MethodPost:
		if s.draining.Load() {
			t := s.tenantFor(tenantName(r))
			s.reject(w, t, "upload", "draining", http.StatusServiceUnavailable, 5*time.Second)
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			name = "unnamed"
		}
		info, err := s.AddMatrix(name, r.Body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "Bad Request", Reason: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, info)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "Method Not Allowed"})
	}
}

// SpMVRequest is the /v1/spmv body. Exactly one of X or Seed supplies
// the input vector: Seed generates it deterministically server-side
// (see SeedVector), which keeps swarm payloads O(1) instead of O(n).
type SpMVRequest struct {
	Matrix string    `json:"matrix"`
	X      []float64 `json:"x,omitempty"`
	Seed   uint64    `json:"seed,omitempty"`
	WantY  bool      `json:"want_y,omitempty"`
}

// SolveRequest is the /v1/solve body.
type SolveRequest struct {
	Matrix  string    `json:"matrix"`
	B       []float64 `json:"b,omitempty"`
	Seed    uint64    `json:"seed,omitempty"`
	Tol     float64   `json:"tol,omitempty"`
	MaxIter int       `json:"max_iter,omitempty"`
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "Method Not Allowed"})
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "Bad Request", Reason: err.Error()})
		return false
	}
	return true
}

// inputVector resolves the explicit-or-seeded input of a request.
func inputVector(explicit []float64, seed uint64, n int) []float64 {
	if explicit != nil {
		return explicit
	}
	return SeedVector(n, seed)
}

func (s *Server) handleSpMV(w http.ResponseWriter, r *http.Request) {
	var req SpMVRequest
	if !decodeBody(w, r, &req) {
		return
	}
	a, ok := s.admit(w, r, "spmv")
	if !ok {
		return
	}
	defer a.finish()
	e, err := s.lookup(req.Matrix)
	if err != nil {
		s.writeErr(w, a, "spmv", err)
		return
	}
	t0 := time.Now()
	res, err := s.SpMV(a.ctx, e, inputVector(req.X, req.Seed, e.info.Rows), req.WantY)
	if err != nil {
		s.writeErr(w, a, "spmv", err)
		return
	}
	s.finishOK(a, "spmv", time.Since(t0))
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	a, ok := s.admit(w, r, "solve")
	if !ok {
		return
	}
	defer a.finish()
	e, err := s.lookup(req.Matrix)
	if err != nil {
		s.writeErr(w, a, "solve", err)
		return
	}
	t0 := time.Now()
	res, err := s.Solve(a.ctx, e, inputVector(req.B, req.Seed, e.info.Rows), req.Tol, req.MaxIter)
	if err != nil {
		if res.Checkpointed {
			// Cancelled cooperatively (deadline or drain): hand the
			// caller the checkpointed iterate state instead of
			// discarding the work.
			s.reg.Counter("service_requests_total",
				telemetry.L("tenant", a.t.name), telemetry.L("kind", "solve"),
				telemetry.Li("code", http.StatusServiceUnavailable)).Inc()
			writeJSON(w, http.StatusServiceUnavailable, res)
			return
		}
		s.writeErr(w, a, "solve", err)
		return
	}
	s.finishOK(a, "solve", time.Since(t0))
	writeJSON(w, http.StatusOK, res)
}

// writeErr maps an execution error to its HTTP shape.
func (s *Server) writeErr(w http.ResponseWriter, a admitted, kind string, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownMatrix):
		code = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
	}
	s.reg.Counter("service_requests_total",
		telemetry.L("tenant", a.t.name), telemetry.L("kind", kind), telemetry.Li("code", code)).Inc()
	writeJSON(w, code, errorBody{Error: http.StatusText(code), Reason: err.Error()})
}

// Status is the /v1/status document.
type Status struct {
	UptimeSeconds  float64      `json:"uptime_seconds"`
	Draining       bool         `json:"draining"`
	Tier           string       `json:"tier"`
	Devices        int          `json:"devices"`
	DevicesHealthy int          `json:"devices_healthy"`
	InFlight       int64        `json:"in_flight"`
	QueueDepth     int64        `json:"queue_depth"`
	QueueMax       int          `json:"queue_max"`
	Served         int64        `json:"served"`
	Checkpointed   int64        `json:"checkpointed"`
	HostFallbacks  int64        `json:"host_fallbacks"`
	P50Seconds     float64      `json:"p50_seconds"`
	P99Seconds     float64      `json:"p99_seconds"`
	Matrices       []MatrixInfo `json:"matrices"`
	Tenants        int          `json:"tenants"`
}

// StatusNow snapshots the service state (also the /v1/status body).
func (s *Server) StatusNow() Status {
	p50, p99 := s.lat.quantiles()
	infos := s.Matrices()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	s.mu.RLock()
	tenants := len(s.tenants)
	s.mu.RUnlock()
	return Status{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Draining:       s.draining.Load(),
		Tier:           s.lad.tier(s.cfg.Now()).String(),
		Devices:        len(s.devices),
		DevicesHealthy: int(s.healthy.Load()),
		InFlight:       s.adm.inFlight(),
		QueueDepth:     s.adm.queueDepth(),
		QueueMax:       s.cfg.QueueDepth,
		Served:         s.served.Load(),
		Checkpointed:   s.checkpointed.Load(),
		HostFallbacks:  s.fallbacks.Load(),
		P50Seconds:     p50,
		P99Seconds:     p99,
		Matrices:       infos,
		Tenants:        tenants,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatusNow())
}

// TenantStatus is one row of /tenants.json.
type TenantStatus struct {
	Tenant     string  `json:"tenant"`
	Admitted   int64   `json:"admitted"`
	Rejected   int64   `json:"rejected"`
	InFlight   int64   `json:"in_flight"`
	Tokens     float64 `json:"tokens"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// TenantsNow snapshots the per-tenant table, sorted by name.
func (s *Server) TenantsNow() []TenantStatus {
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	out := make([]TenantStatus, 0, len(ts))
	for _, t := range ts {
		p50, p99 := t.lat.quantiles()
		out = append(out, TenantStatus{
			Tenant:     t.name,
			Admitted:   t.admitted.Load(),
			Rejected:   t.rejected.Load(),
			InFlight:   t.inflight.Load(),
			Tokens:     t.bucket.level(),
			P50Seconds: p50,
			P99Seconds: p99,
		})
	}
	return out
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.TenantsNow())
}

// SeedVector generates the deterministic request vector shared by
// server and swarm: splitmix64 per element, mapped into [0.5, 1.5) so
// entries are well away from zero. The swarm's digest gate relies on
// both sides generating bit-identical vectors from (n, seed).
func SeedVector(n int, seed uint64) []float64 {
	x := make([]float64, n)
	for i := range x {
		z := seed + uint64(i+1)*0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		x[i] = 0.5 + float64(z>>11)/float64(1<<53)
	}
	return x
}
