package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pjds/internal/core"
	"pjds/internal/gpu"
	"pjds/internal/health"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/solver"
	"pjds/internal/telemetry"
)

// testMatrixBody renders the standard test matrix (an SPD 2D Laplacian
// stencil) as a MatrixMarket body.
func testMatrixBody(t *testing.T) (*matrix.CSR[float64], []byte) {
	t.Helper()
	m := matgen.Stencil2D(8, 8)
	var buf bytes.Buffer
	if err := matrix.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatalf("WriteMatrixMarket: %v", err)
	}
	return m, buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.APIHandler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func upload(t *testing.T, ts *httptest.Server, name string, body []byte) MatrixInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/matrices?name="+name, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d", resp.StatusCode)
	}
	var info MatrixInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("upload decode: %v", err)
	}
	return info
}

// post sends one API request and decodes the JSON response into out.
func post(t *testing.T, ts *httptest.Server, path string, hdr map[string]string, req, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("do %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

// referenceDigest computes the digest of y = A·x through a private
// fault-free host-kernel pipeline — the bit-exact reference every
// service tier (device or host, faulted or not) must reproduce. The
// pJDS layout fixes its own in-row summation order, so the reference
// is the host kernel, not a naive CSR loop.
func referenceDigest(t *testing.T, m *matrix.CSR[float64], x []float64) string {
	t.Helper()
	op, err := solver.NewPermutedPJDS(m, core.Options{})
	if err != nil {
		t.Fatalf("reference operator: %v", err)
	}
	defer op.Close()
	n := m.NRows
	xp := op.Enter(make([]float64, n), x)
	yp := make([]float64, n)
	if err := op.Apply(yp, xp); err != nil {
		t.Fatalf("reference apply: %v", err)
	}
	return DigestVector(op.Leave(make([]float64, n), yp))
}

func TestUploadDedupAndSpMVDigest(t *testing.T) {
	m, body := testMatrixBody(t)
	_, ts := newTestServer(t, Config{Devices: 2})

	info := upload(t, ts, "first", body)
	if info.Shared {
		t.Fatalf("first upload reported Shared")
	}
	if info.Rows != m.NRows || info.Nnz != int64(len(m.Val)) {
		t.Fatalf("info = %+v, want %dx%d nnz %d", info, m.NRows, m.NCols, len(m.Val))
	}
	dup := upload(t, ts, "second", body)
	if !dup.Shared || dup.ID != info.ID {
		t.Fatalf("duplicate upload not deduplicated: %+v vs %+v", dup, info)
	}

	var res SpMVResult
	resp := post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 7}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spmv: HTTP %d", resp.StatusCode)
	}
	if res.Tier != "device" {
		t.Fatalf("tier = %q, want device", res.Tier)
	}
	if want := referenceDigest(t, m, SeedVector(m.NRows, 7)); res.Digest != want {
		t.Fatalf("digest %s != reference %s", res.Digest, want)
	}

	// Unknown matrix → 404.
	resp = post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: "nope"}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown matrix: HTTP %d, want 404", resp.StatusCode)
	}
}

// eccAt fires an uncorrectable ECC event at one launch index.
type eccAt struct {
	mu sync.Mutex
	n  int
	at int
}

func (e *eccAt) ECCEvent(string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	l := e.n
	e.n++
	return l == e.at
}

func TestECCDowngradeBitIdentical(t *testing.T) {
	m, body := testMatrixBody(t)
	// Every device takes an ECC hit on its first launch: the ladder
	// must walk device→host mid-request without changing one bit.
	s, ts := newTestServer(t, Config{
		Devices:      2,
		DeviceFaults: func(int) gpu.ECCInjector { return &eccAt{at: 0} },
	})
	info := upload(t, ts, "m", body)

	var res SpMVResult
	resp := post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 3}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spmv under ECC: HTTP %d", resp.StatusCode)
	}
	if res.Tier != "host" {
		t.Fatalf("tier = %q, want host after mid-request ECC downgrade", res.Tier)
	}
	if want := referenceDigest(t, m, SeedVector(m.NRows, 3)); res.Digest != want {
		t.Fatalf("ECC downgrade changed bits: digest %s != reference %s", res.Digest, want)
	}

	var solve SolveResult
	resp = post(t, ts, "/v1/solve", nil, SolveRequest{Matrix: info.ID, Seed: 5}, &solve)
	if resp.StatusCode != http.StatusOK || !solve.Converged {
		t.Fatalf("solve under ECC: HTTP %d, %+v", resp.StatusCode, solve)
	}

	// Burn through the remaining device (pool order is not fixed), then
	// confirm the fleet is fully downgraded.
	for i := 0; i < 2; i++ {
		post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 3}, nil)
	}
	st := s.StatusNow()
	if st.DevicesHealthy != 0 || st.Tier != "host" {
		t.Fatalf("after ECC on all boards: healthy=%d tier=%s, want 0/host", st.DevicesHealthy, st.Tier)
	}
	if st.HostFallbacks == 0 {
		t.Fatalf("host fallbacks not counted")
	}

	// The fault-free control must agree bit for bit on the solve too.
	_, ctrl := newTestServer(t, Config{Devices: 2})
	cinfo := upload(t, ctrl, "m", body)
	var want SolveResult
	if resp := post(t, ctrl, "/v1/solve", nil, SolveRequest{Matrix: cinfo.ID, Seed: 5}, &want); resp.StatusCode != http.StatusOK {
		t.Fatalf("control solve: HTTP %d", resp.StatusCode)
	}
	if want.Digest != solve.Digest {
		t.Fatalf("faulted solve digest %s != fault-free %s", solve.Digest, want.Digest)
	}
}

func TestQuotaShedsWith429(t *testing.T) {
	_, body := testMatrixBody(t)
	_, ts := newTestServer(t, Config{Devices: 1, TenantRate: 0.001, TenantBurst: 1})
	info := upload(t, ts, "m", body)

	hdr := map[string]string{HeaderTenant: "alice"}
	if resp := post(t, ts, "/v1/spmv", hdr, SpMVRequest{Matrix: info.ID, Seed: 1}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: HTTP %d", resp.StatusCode)
	}
	var eb errorBody
	resp := post(t, ts, "/v1/spmv", hdr, SpMVRequest{Matrix: info.ID, Seed: 1}, &eb)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: HTTP %d, want 429", resp.StatusCode)
	}
	if eb.Reason != "quota" || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over quota: reason=%q Retry-After=%q", eb.Reason, resp.Header.Get("Retry-After"))
	}
	// Another tenant's bucket is untouched.
	if resp := post(t, ts, "/v1/spmv", map[string]string{HeaderTenant: "bob"}, SpMVRequest{Matrix: info.ID, Seed: 1}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: HTTP %d, want 200", resp.StatusCode)
	}
}

// waitFor polls until cond holds or the test times out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueFullShedsWith429(t *testing.T) {
	_, body := testMatrixBody(t)
	s, ts := newTestServer(t, Config{Devices: 1, MaxInFlight: 1, QueueDepth: 1, ApplyDelay: 300 * time.Millisecond})
	info := upload(t, ts, "m", body)

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 1}, nil)
			codes[i] = resp.StatusCode
		}()
		if i == 0 {
			waitFor(t, "request executing", func() bool { return s.adm.inFlight() == 1 })
		} else {
			waitFor(t, "request queued", func() bool { return s.adm.queueDepth() == 1 })
		}
	}
	// Slot busy, queue full: the third request is shed immediately.
	var eb errorBody
	resp := post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 1}, &eb)
	if resp.StatusCode != http.StatusTooManyRequests || eb.Reason != "queue_full" {
		t.Fatalf("full queue: HTTP %d reason %q, want 429 queue_full", resp.StatusCode, eb.Reason)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: HTTP %d, want 200", i, c)
		}
	}
}

func TestDeadlineCheckpointsSolve(t *testing.T) {
	_, body := testMatrixBody(t)
	_, ts := newTestServer(t, Config{Devices: 1, ApplyDelay: 30 * time.Millisecond})
	info := upload(t, ts, "m", body)

	var res SolveResult
	resp := post(t, ts, "/v1/solve",
		map[string]string{HeaderDeadlineMs: "120"},
		SolveRequest{Matrix: info.ID, Seed: 2, Tol: 1e-300, MaxIter: 100000}, &res)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline mid-solve: HTTP %d, want 503", resp.StatusCode)
	}
	if !res.Checkpointed || res.Converged {
		t.Fatalf("deadline mid-solve: %+v, want checkpointed", res)
	}
	if res.Digest == "" {
		t.Fatalf("checkpoint carries no digest")
	}
}

func TestDrainCheckpointsInFlightAndRejectsNew(t *testing.T) {
	_, body := testMatrixBody(t)
	s, ts := newTestServer(t, Config{Devices: 1, ApplyDelay: 50 * time.Millisecond})
	info := upload(t, ts, "m", body)

	type result struct {
		code int
		res  SolveResult
	}
	ch := make(chan result, 1)
	go func() {
		var res SolveResult
		resp := post(t, ts, "/v1/solve", nil, SolveRequest{Matrix: info.ID, Seed: 9, Tol: 1e-300, MaxIter: 100000}, &res)
		ch <- result{resp.StatusCode, res}
	}()
	waitFor(t, "solve executing", func() bool { return s.adm.inFlight() == 1 })

	rep := s.Drain(30 * time.Millisecond)
	if rep.Graceful {
		t.Fatalf("drain reported graceful with a long solve in flight")
	}
	if rep.Checkpointed != 1 {
		t.Fatalf("drain checkpointed %d solves, want 1", rep.Checkpointed)
	}
	r := <-ch
	if r.code != http.StatusServiceUnavailable || !r.res.Checkpointed {
		t.Fatalf("drained solve: HTTP %d %+v, want 503 checkpointed", r.code, r.res)
	}

	var eb errorBody
	resp := post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 1}, &eb)
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Reason != "draining" {
		t.Fatalf("post-drain request: HTTP %d reason %q, want 503 draining", resp.StatusCode, eb.Reason)
	}
	if !s.Draining() {
		t.Fatalf("Draining() = false after Drain")
	}
}

func TestDrainGracefulWhenIdle(t *testing.T) {
	s := New(Config{Devices: 1, Registry: telemetry.NewRegistry()})
	defer s.Close()
	rep := s.Drain(time.Second)
	if !rep.Graceful || rep.Checkpointed != 0 {
		t.Fatalf("idle drain: %+v, want graceful", rep)
	}
}

func TestBreakerRejectsOnHealthFail(t *testing.T) {
	_, body := testMatrixBody(t)
	reg := telemetry.NewRegistry()
	eng := health.New(reg, health.Options{Window: 5})
	eng.Tick(0)
	reg.Counter("mpi_failures_detected_total").Inc()
	rep := eng.Tick(1)
	if rep.Status != health.Fail {
		t.Fatalf("health engine: %v, want fail", rep.Status)
	}

	_, ts := newTestServer(t, Config{Devices: 1, Registry: reg, Health: eng})
	info := upload(t, ts, "m", body)
	var eb errorBody
	resp := post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 1}, &eb)
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Reason != "breaker_open" {
		t.Fatalf("fail-grade health: HTTP %d reason %q, want 503 breaker_open", resp.StatusCode, eb.Reason)
	}
}

func TestStatusAndTenantsViews(t *testing.T) {
	_, body := testMatrixBody(t)
	_, ts := newTestServer(t, Config{Devices: 2})
	info := upload(t, ts, "m", body)
	for _, tenant := range []string{"alice", "bob"} {
		post(t, ts, "/v1/solve", map[string]string{HeaderTenant: tenant}, SolveRequest{Matrix: info.ID, Seed: 1}, nil)
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	resp.Body.Close()
	if st.Served != 2 || st.Devices != 2 || st.Tier != "device" || len(st.Matrices) != 1 {
		t.Fatalf("status = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/tenants.json")
	if err != nil {
		t.Fatalf("tenants: %v", err)
	}
	var rows []TenantStatus
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatalf("tenants decode: %v", err)
	}
	resp.Body.Close()
	if len(rows) != 2 || rows[0].Tenant != "alice" || rows[1].Tenant != "bob" {
		t.Fatalf("tenants = %+v", rows)
	}
	for _, r := range rows {
		if r.Admitted != 1 || r.P50Seconds <= 0 {
			t.Fatalf("tenant row = %+v", r)
		}
	}
}

// TestConcurrentMixedLoad is the race-detector workout: many tenants,
// mixed spmv/solve, a faulted device, all over one shared matrix.
func TestConcurrentMixedLoad(t *testing.T) {
	m, body := testMatrixBody(t)
	_, ts := newTestServer(t, Config{
		Devices:      2,
		MaxInFlight:  4,
		QueueDepth:   64,
		DeviceFaults: func(i int) gpu.ECCInjector { return &eccAt{at: 5} },
	})
	info := upload(t, ts, "m", body)
	wantDigest := referenceDigest(t, m, SeedVector(m.NRows, 11))

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			hdr := map[string]string{HeaderTenant: fmt.Sprintf("tenant-%d", g%4)}
			for i := 0; i < 8; i++ {
				if i%2 == 0 {
					var res SpMVResult
					resp := post(t, ts, "/v1/spmv", hdr, SpMVRequest{Matrix: info.ID, Seed: 11}, &res)
					if resp.StatusCode == http.StatusOK && res.Digest != wantDigest {
						errs <- fmt.Errorf("goroutine %d: digest %s != %s", g, res.Digest, wantDigest)
						return
					}
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("goroutine %d: HTTP %d", g, resp.StatusCode)
						return
					}
				} else {
					var res SolveResult
					resp := post(t, ts, "/v1/solve", hdr, SolveRequest{Matrix: info.ID, Seed: 11}, &res)
					if resp.StatusCode == http.StatusOK && !res.Converged {
						errs <- fmt.Errorf("goroutine %d: solve did not converge", g)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRejectsNonSquareUpload(t *testing.T) {
	s := New(Config{Devices: 1, Registry: telemetry.NewRegistry()})
	defer s.Close()
	mm := "%%MatrixMarket matrix coordinate real general\n2 3 2\n1 1 1.0\n2 3 2.0\n"
	if _, err := s.AddMatrix("rect", strings.NewReader(mm)); err == nil {
		t.Fatalf("non-square upload accepted")
	}
}

// TestTuneOnUpload: with Config.TuningDB set, the first upload of a
// matrix sweeps the (C, σ) grid and persists the winner; re-uploads
// (same tenant or dedup-shared), and a fresh server against the same
// DB, answer from the cache without re-sweeping. Serving the matrix
// publishes the per-matrix service_tuning_lag_ratio gauge that feeds
// the health engine's tuning_lag signal.
func TestTuneOnUpload(t *testing.T) {
	db := filepath.Join(t.TempDir(), "tuning.jsonl")
	reg := telemetry.NewRegistry()
	_, body := testMatrixBody(t)
	s, ts := newTestServer(t, Config{Devices: 1, TuningDB: db, Registry: reg})

	info := upload(t, ts, "a", body)
	if info.TunedFormat == "" || info.TunedNsPerNnz <= 0 {
		t.Fatalf("upload carried no tuning result: %+v", info)
	}
	if info.TuningCacheHit {
		t.Fatal("first upload claimed a tuning cache hit")
	}
	switch info.TunedFormat {
	case "CRS", "CMRS-h8", "CMRS-h32":
	default:
		if info.TunedC <= 0 || info.TunedSigma <= 0 {
			t.Fatalf("sliced winner %s lost its (C, σ): %+v", info.TunedFormat, info)
		}
	}

	// Dedup path: a second tenant's identical upload shares the sweep.
	shared := upload(t, ts, "b", body)
	if !shared.Shared || !shared.TuningCacheHit {
		t.Fatalf("dedup upload did not reuse the sweep: %+v", shared)
	}

	// Serving publishes the lag gauge under the matrix name.
	var res SpMVResult
	post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 7}, &res)
	var lag float64
	for _, mt := range reg.Snapshot() {
		if mt.Name == "service_tuning_lag_ratio" && mt.Labels["matrix"] == "a" {
			lag = mt.Value
		}
	}
	if lag <= 0 {
		t.Fatal("SpMV did not publish service_tuning_lag_ratio")
	}

	// A fresh server (simulated restart) against the same DB answers
	// from the persisted entry: cache hit, identical winner, and its
	// registry never counts a sweep.
	reg2 := telemetry.NewRegistry()
	s2, ts2 := newTestServer(t, Config{Devices: 1, TuningDB: db, Registry: reg2})
	info2 := upload(t, ts2, "a-again", body)
	if !info2.TuningCacheHit || info2.TunedFormat != info.TunedFormat {
		t.Fatalf("restart re-swept or changed winner: %+v vs %+v", info2, info)
	}
	for _, mt := range reg2.Snapshot() {
		if mt.Name == "tuner_sweeps_total" && mt.Value != 0 {
			t.Fatalf("restart ran %g sweeps, want 0", mt.Value)
		}
	}
	_ = s
	_ = s2
}

// TestTuningDisabledWithoutDB: the zero Config never tunes — no tuned
// fields on upload, no lag gauge on serve.
func TestTuningDisabledWithoutDB(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, body := testMatrixBody(t)
	_, ts := newTestServer(t, Config{Devices: 1, Registry: reg})
	info := upload(t, ts, "a", body)
	if info.TunedFormat != "" || info.TunedNsPerNnz != 0 || info.TuningCacheHit {
		t.Fatalf("tuning fields set without a TuningDB: %+v", info)
	}
	var res SpMVResult
	post(t, ts, "/v1/spmv", nil, SpMVRequest{Matrix: info.ID, Seed: 7}, &res)
	for _, mt := range reg.Snapshot() {
		if mt.Name == "service_tuning_lag_ratio" {
			t.Fatal("lag gauge published without tuning")
		}
	}
}
