package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// tokenBucket is one tenant's request quota: capacity burst, refilled
// at rate tokens/second. take is mutex-guarded and allocation-free —
// it sits on the admission fast path of every request, and the pr9
// benchmark gate holds it to 0 allocs/op.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take consumes one token if available. When the bucket is empty it
// reports the wait until the next token accrues — the Retry-After the
// 429 response carries, so a well-behaved client retries exactly when
// its quota readmits it instead of immediately.
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	b.mu.Unlock()
	return false, time.Duration(need * float64(time.Second))
}

// level returns the current (unrefilled) token count for status views.
func (b *tokenBucket) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// admission is the bounded two-stage gate every request passes:
// tryQueue claims one of queueMax waiter slots (immediate 429 with
// backpressure when the backlog is full — the service sheds load
// instead of accumulating unbounded goroutines), then acquire waits
// for one of the maxInFlight execution slots, honouring the request
// deadline while queued.
type admission struct {
	queueMax int
	waiting  atomic.Int64
	inflight atomic.Int64
	exec     chan struct{}
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{queueMax: queueDepth, exec: make(chan struct{}, maxInFlight)}
}

// admit runs the whole gate: an uncontended request seizes a free
// execution slot immediately (no waiter slot consumed, the path the
// 0-allocs/op benchmark measures); a contended one claims a waiter
// slot — full backlog reports queueFull, the backpressure signal the
// 429 turns into Retry-After — and blocks for an execution slot until
// done closes (deadline or client gone while queued).
func (a *admission) admit(done <-chan struct{}) (queueFull bool, err error) {
	select {
	case a.exec <- struct{}{}:
		a.inflight.Add(1)
		return false, nil
	default:
	}
	for {
		n := a.waiting.Load()
		if int(n) >= a.queueMax {
			return true, nil
		}
		if a.waiting.CompareAndSwap(n, n+1) {
			break
		}
	}
	select {
	case a.exec <- struct{}{}:
		a.waiting.Add(-1)
		a.inflight.Add(1)
		return false, nil
	case <-done:
		a.waiting.Add(-1)
		return false, errAdmissionAborted
	}
}

// release frees the execution slot taken by a successful admit.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.exec
}

// queueDepth returns the current backlog (waiters only).
func (a *admission) queueDepth() int64 { return a.waiting.Load() }

// inFlight returns the number of executing requests.
func (a *admission) inFlight() int64 { return a.inflight.Load() }

// latRing is a fixed-size ring of recent request latencies; p50/p99
// quantiles feed /v1/status, the swarm gates, and the drain report.
type latRing struct {
	mu    sync.Mutex
	buf   []float64 // seconds
	n     int       // next write position
	count int64     // total observations
}

const latRingSize = 4096

func newLatRing() *latRing { return &latRing{buf: make([]float64, 0, latRingSize)} }

// observe records one request latency in seconds.
func (r *latRing) observe(sec float64) {
	r.mu.Lock()
	if len(r.buf) < latRingSize {
		r.buf = append(r.buf, sec)
	} else {
		r.buf[r.n] = sec
		r.n = (r.n + 1) % latRingSize
	}
	r.count++
	r.mu.Unlock()
}

// quantiles returns (p50, p99) over the retained window, zero when
// empty.
func (r *latRing) quantiles() (p50, p99 float64) {
	r.mu.Lock()
	tmp := append([]float64(nil), r.buf...)
	r.mu.Unlock()
	if len(tmp) == 0 {
		return 0, 0
	}
	sort.Float64s(tmp)
	at := func(q float64) float64 {
		i := int(q * float64(len(tmp)-1))
		return tmp[i]
	}
	return at(0.50), at(0.99)
}

// total returns the lifetime observation count.
func (r *latRing) total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
