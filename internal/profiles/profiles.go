// Package profiles propagates pprof phase labels through the hot
// paths and reads the resulting CPU/heap profiles back into per-phase
// attribution tables.
//
// The label vocabulary mirrors the span lanes (host, gpu, solver,
// mpi, convert) so that a profile sliced by the "phase" label lines
// up with the span-derived critical-path attribution: the same names
// answer "where did the wall clock go" (spans) and "where did the CPU
// samples go" (profile).
//
// Labeling strategy. pprof.Do restores the labels of the context it
// was given when it returns, so nesting it around an enclosing
// goroutine's labels silently clears them — and Go has no API to read
// the current goroutine's labels back. We therefore never nest:
//
//   - long-lived worker goroutines (par.Pool workers, gpu replay
//     workers, mpi rank goroutines) are labeled once at spawn with a
//     prebuilt context, which is allocation-free and covers their
//     whole lifetime;
//   - coordinating goroutines are re-labeled *sequentially* at stage
//     boundaries with SetPhase (convert → gpu → solver …), never
//     restored.
//
// SetGoroutineLabels with a prebuilt context performs no allocation,
// which is what keeps the hostkernel steady state at 0 allocs/op.
package profiles

import (
	"context"
	"runtime/pprof"
)

// Phase label values. These must match the telemetry span lanes — the
// perfreport -profile cross-check compares the two sets.
const (
	PhaseHost    = "host"
	PhaseGPU     = "gpu"
	PhaseSolver  = "solver"
	PhaseMPI     = "mpi"
	PhaseConvert = "convert"
)

// KnownPhases is the closed set of phase label values the repo emits,
// i.e. the span-lane vocabulary.
var KnownPhases = []string{PhaseHost, PhaseGPU, PhaseSolver, PhaseMPI, PhaseConvert}

// Ctx returns a context carrying a "phase" pprof label plus optional
// additional key/value pairs (given as k1, v1, k2, v2, ...). Build it
// once and hand it to Use from each goroutine that should carry the
// labels: the per-use cost is then allocation-free.
func Ctx(phase string, kv ...string) context.Context {
	l := make([]string, 0, 2+len(kv))
	l = append(l, "phase", phase)
	l = append(l, kv...)
	return pprof.WithLabels(context.Background(), pprof.Labels(l...))
}

// Use applies ctx's pprof labels to the calling goroutine for the
// rest of its life (or until the next Use/SetPhase). With a prebuilt
// Ctx this does not allocate.
func Use(ctx context.Context) {
	pprof.SetGoroutineLabels(ctx)
}

// SetPhase relabels the calling goroutine with phase plus optional
// key/value pairs. It replaces any previous labels rather than
// stacking, which is the intended use on coordinating goroutines that
// move through stages (convert, then gpu, then solver). It allocates
// a fresh label set, so call it at stage boundaries, not in loops.
func SetPhase(phase string, kv ...string) {
	pprof.SetGoroutineLabels(Ctx(phase, kv...))
}

// Clear removes all pprof labels from the calling goroutine.
func Clear() {
	pprof.SetGoroutineLabels(context.Background())
}
