package profiles

import (
	"fmt"
	"io"
	"sort"
)

// Attribution slices a profile's samples by the "phase" pprof label:
// how much of the measured quantity (CPU nanoseconds, heap bytes)
// each phase accounts for, what further splits by kernel/format/rank
// look like inside the labeled share, and which functions dominate
// the unlabeled residue. Heap profiles carry no goroutine labels, so
// for them everything lands in the residue and the top-functions
// table is the useful part.

// PhaseRow is one phase's share of the profile.
type PhaseRow struct {
	Phase string  `json:"phase"`
	Value int64   `json:"value"`
	Frac  float64 `json:"frac"`
}

// FuncRow is one function's share of the unlabeled samples.
type FuncRow struct {
	Func  string  `json:"func"`
	Value int64   `json:"value"`
	Frac  float64 `json:"frac"`
}

// Attribution is the per-phase sample attribution of one profile.
type Attribution struct {
	SampleType   ValueType  `json:"sample_type"`
	Total        int64      `json:"total"`
	Attributed   int64      `json:"attributed"`
	Phases       []PhaseRow `json:"phases"`
	Unattributed int64      `json:"unattributed"`
	TopUnlabeled []FuncRow  `json:"top_unlabeled,omitempty"`
	// ByLabel holds secondary breakdowns (kernel, format, rank) of
	// the labeled share, keyed by label name.
	ByLabel map[string][]PhaseRow `json:"by_label,omitempty"`
}

// AttributedFrac is the fraction of the total attributed to a known
// phase (0 when the profile is empty).
func (a *Attribution) AttributedFrac() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Attributed) / float64(a.Total)
}

// Attribute slices p by the "phase" label using the default value
// column (see Profile.DefaultValueIndex). When that column carries no
// weight — inuse_space in a heap profile flushed right after a final
// GC is all zeros — it falls back to the nearest earlier column with
// weight (alloc_space for heap profiles), so the report shows where
// the bytes went instead of an empty table.
func Attribute(p *Profile) *Attribution {
	a := AttributeIndex(p, p.DefaultValueIndex())
	for vi := p.DefaultValueIndex() - 1; a.Total == 0 && vi >= 0; vi-- {
		if alt := AttributeIndex(p, vi); alt.Total != 0 {
			return alt
		}
	}
	return a
}

// AttributeIndex slices p by the "phase" label using value column vi.
func AttributeIndex(p *Profile, vi int) *Attribution {
	a := &Attribution{ByLabel: map[string][]PhaseRow{}}
	if vi >= 0 && vi < len(p.SampleTypes) {
		a.SampleType = p.SampleTypes[vi]
	}
	phase := map[string]int64{}
	sub := map[string]map[string]int64{} // label key -> value -> total
	unlabeledFn := map[string]int64{}
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		a.Total += v
		if ph, ok := s.Labels["phase"]; ok && ph != "" {
			a.Attributed += v
			phase[ph] += v
			for _, k := range []string{"kernel", "format", "rank", "lane"} {
				if lv, ok := s.Labels[k]; ok {
					m := sub[k]
					if m == nil {
						m = map[string]int64{}
						sub[k] = m
					}
					m[lv] += v
				}
			}
			continue
		}
		a.Unattributed += v
		fn := "(unknown)"
		if len(s.LocationIDs) > 0 {
			if name := p.FuncName(s.LocationIDs[0]); name != "" {
				fn = name
			}
		}
		unlabeledFn[fn] += v
	}
	a.Phases = sortRows(phase, a.Total)
	for k, m := range sub {
		a.ByLabel[k] = sortRows(m, a.Attributed)
	}
	fns := sortRows(unlabeledFn, a.Total)
	const topN = 8
	if len(fns) > topN {
		fns = fns[:topN]
	}
	for _, r := range fns {
		a.TopUnlabeled = append(a.TopUnlabeled, FuncRow{Func: r.Phase, Value: r.Value, Frac: r.Frac})
	}
	return a
}

func sortRows(m map[string]int64, total int64) []PhaseRow {
	rows := make([]PhaseRow, 0, len(m))
	for k, v := range m {
		r := PhaseRow{Phase: k, Value: v}
		if total > 0 {
			r.Frac = float64(v) / float64(total)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value > rows[j].Value
		}
		return rows[i].Phase < rows[j].Phase
	})
	return rows
}

// WriteTable renders the attribution as a fixed-width text table.
func (a *Attribution) WriteTable(w io.Writer) {
	unit := a.SampleType.Unit
	if unit == "" {
		unit = "samples"
	}
	fmt.Fprintf(w, "profile attribution (%s/%s, total %s)\n",
		orDash(a.SampleType.Type), unit, formatValue(a.Total, unit))
	fmt.Fprintf(w, "  %-10s %14s %7s\n", "phase", "value", "share")
	for _, r := range a.Phases {
		fmt.Fprintf(w, "  %-10s %14s %6.1f%%\n", r.Phase, formatValue(r.Value, unit), 100*r.Frac)
	}
	fmt.Fprintf(w, "  %-10s %14s %6.1f%%\n", "(unlabeled)", formatValue(a.Unattributed, unit),
		100*(1-a.AttributedFrac()))
	fmt.Fprintf(w, "  attributed to known phases: %.1f%%\n", 100*a.AttributedFrac())
	for _, key := range []string{"kernel", "format", "rank", "lane"} {
		rows, ok := a.ByLabel[key]
		if !ok || len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "  by %s:\n", key)
		for _, r := range rows {
			fmt.Fprintf(w, "    %-12s %14s %6.1f%%\n", r.Phase, formatValue(r.Value, unit), 100*r.Frac)
		}
	}
	if len(a.TopUnlabeled) > 0 && a.Unattributed > 0 {
		fmt.Fprintf(w, "  top unlabeled functions:\n")
		for _, r := range a.TopUnlabeled {
			fmt.Fprintf(w, "    %-52s %12s %6.1f%%\n", trimFunc(r.Func), formatValue(r.Value, unit), 100*r.Frac)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func trimFunc(fn string) string {
	if len(fn) > 52 {
		return "…" + fn[len(fn)-51:]
	}
	return fn
}

func formatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case "bytes":
		switch {
		case v >= 1<<20:
			return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
		}
	}
	return fmt.Sprintf("%d", v)
}

// UnknownPhases returns attributed phase names outside the known
// span-lane vocabulary — perfreport uses this for the cross-check
// that the profile's phase set matches the span lanes.
func (a *Attribution) UnknownPhases() []string {
	known := map[string]bool{}
	for _, ph := range KnownPhases {
		known[ph] = true
	}
	var out []string
	for _, r := range a.Phases {
		if !known[r.Phase] {
			out = append(out, r.Phase)
		}
	}
	return out
}

// PhaseSet returns the attributed phase names, sorted.
func (a *Attribution) PhaseSet() []string {
	out := make([]string, 0, len(a.Phases))
	for _, r := range a.Phases {
		out = append(out, r.Phase)
	}
	sort.Strings(out)
	return out
}
