package profiles

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
)

// Capture owns an in-flight CPU and/or heap profile capture. Unlike a
// bare pprof.StartCPUProfile + defer, it also flushes the profiles
// when the process receives SIGINT or SIGTERM — a Ctrl-C'd bench run
// still leaves valid profiles behind — and it forces a final GC
// before writing the heap profile so that steady-state live heap is
// measured rather than whatever garbage the last cycle left floating.
type Capture struct {
	cpuFile *os.File
	memPath string

	mu      sync.Mutex
	stopped bool
	sigCh   chan os.Signal
	sigDone chan struct{}
}

// StartCapture begins CPU profiling to cpuPath (when non-empty) and
// arranges a heap profile at memPath (when non-empty) for Stop time.
// Either path may be empty; with both empty the returned Capture is
// inert and Stop is a cheap no-op.
func StartCapture(cpuPath, memPath string) (*Capture, error) {
	c := &Capture{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiles: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiles: cpu profile: %w", err)
		}
		c.cpuFile = f
	}
	if c.cpuFile != nil || c.memPath != "" {
		c.sigCh = make(chan os.Signal, 1)
		c.sigDone = make(chan struct{})
		signal.Notify(c.sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			defer close(c.sigDone)
			sig, ok := <-c.sigCh
			if !ok {
				return
			}
			// Flush everything we have, then die with the default
			// disposition so the exit status still reflects the
			// signal.
			c.flush()
			signal.Reset(sig)
			if p, err := os.FindProcess(os.Getpid()); err == nil {
				p.Signal(sig)
			}
			os.Exit(1)
		}()
	}
	return c, nil
}

// Stop flushes the CPU profile and writes the heap profile (after a
// forced GC). Safe to call multiple times; later calls are no-ops.
func (c *Capture) Stop() error {
	err := c.flush()
	if c.sigCh != nil {
		signal.Stop(c.sigCh)
		close(c.sigCh)
		<-c.sigDone
		c.sigCh = nil
	}
	return err
}

func (c *Capture) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil
	}
	c.stopped = true
	var firstErr error
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("profiles: cpu profile: %w", err)
		}
	}
	if c.memPath != "" {
		// Two GCs: the first finishes any in-progress cycle, the
		// second collects everything that died during it, so the
		// heap profile reflects truly live steady-state allocations.
		runtime.GC()
		runtime.GC()
		f, err := os.Create(c.memPath)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("profiles: heap profile: %w", err)
			}
			return firstErr
		}
		if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("profiles: heap profile: %w", err)
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("profiles: heap profile: %w", err)
		}
	}
	return firstErr
}
