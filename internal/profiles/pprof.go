package profiles

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// A minimal reader for the pprof profile.proto wire format. The repo
// has no dependencies, so instead of google/pprof/profile we decode
// the handful of protobuf messages a CPU/heap profile actually uses:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table (string), 10 duration_nanos,
//	          11 period_type (ValueType), 12 period
//	ValueType: 1 type (strtab), 2 unit (strtab)
//	Sample:   1 location_id (repeated uint64), 2 value (repeated
//	          int64), 3 label (Label)
//	Label:    1 key (strtab), 2 str (strtab), 3 num
//	Location: 1 id, 4 line (Line)
//	Line:     1 function_id
//	Function: 1 id, 2 name (strtab)
//
// Repeated scalar fields arrive packed (wire type 2) or unpacked
// (wire type 0) depending on the writer; both are handled.

// ValueType names one sample value column, e.g. cpu/nanoseconds.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack sample: a location stack (leaf first), one
// value per sample type, and the pprof labels in force when it was
// taken.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
	Labels      map[string]string
	NumLabels   map[string]int64
}

// Profile is the decoded subset of a pprof profile needed for
// per-phase attribution.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	DurationNanos int64
	PeriodType    ValueType
	Period        int64

	locFunc  map[uint64]uint64 // location id -> leaf function id
	funcName map[uint64]string // function id -> name
}

// FuncName resolves the leaf function name for a location ID,
// returning "" when unknown (e.g. stripped mappings).
func (p *Profile) FuncName(locID uint64) string {
	if fid, ok := p.locFunc[locID]; ok {
		return p.funcName[fid]
	}
	return ""
}

// DefaultValueIndex returns the conventional value column: the last
// sample type (cpu/nanoseconds for CPU profiles, inuse_space for heap
// profiles), matching `go tool pprof` defaults.
func (p *Profile) DefaultValueIndex() int {
	if n := len(p.SampleTypes); n > 0 {
		return n - 1
	}
	return 0
}

// ParseFile reads and decodes a pprof profile from disk.
func ParseFile(path string) (*Profile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("profiles: %s: %w", path, err)
	}
	return p, nil
}

// Parse decodes a (possibly gzip-compressed) pprof profile.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("gzip: %w", err)
		}
		data = raw
	}
	d := &decoder{b: data}

	var strtab []string
	type rawLabel struct {
		key, str uint64
		num      int64
	}
	type rawSample struct {
		locs   []uint64
		values []int64
		labels []rawLabel
	}
	var samples []rawSample
	var sampleTypes [][2]uint64 // type, unit string indexes
	var periodType [2]uint64
	funcNameIdx := map[uint64]uint64{} // function id -> strtab index
	p := &Profile{
		locFunc:  map[uint64]uint64{},
		funcName: map[uint64]string{},
	}

	for !d.done() {
		num, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			msg, err := d.msg(wt)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			msg, err := d.msg(wt)
			if err != nil {
				return nil, err
			}
			var s rawSample
			sd := &decoder{b: msg}
			for !sd.done() {
				n, w, err := sd.tag()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1: // location_id
					vals, err := sd.repeatedVarint(w)
					if err != nil {
						return nil, err
					}
					s.locs = append(s.locs, vals...)
				case 2: // value
					vals, err := sd.repeatedVarint(w)
					if err != nil {
						return nil, err
					}
					for _, v := range vals {
						s.values = append(s.values, int64(v))
					}
				case 3: // label
					lmsg, err := sd.msg(w)
					if err != nil {
						return nil, err
					}
					var l rawLabel
					ld := &decoder{b: lmsg}
					for !ld.done() {
						ln, lw, err := ld.tag()
						if err != nil {
							return nil, err
						}
						switch ln {
						case 1:
							l.key, err = ld.varintField(lw)
						case 2:
							l.str, err = ld.varintField(lw)
						case 3:
							var v uint64
							v, err = ld.varintField(lw)
							l.num = int64(v)
						default:
							err = ld.skip(lw)
						}
						if err != nil {
							return nil, err
						}
					}
					s.labels = append(s.labels, l)
				default:
					if err := sd.skip(w); err != nil {
						return nil, err
					}
				}
			}
			samples = append(samples, s)
		case 4: // location
			msg, err := d.msg(wt)
			if err != nil {
				return nil, err
			}
			var id, leafFn uint64
			ld := &decoder{b: msg}
			for !ld.done() {
				n, w, err := ld.tag()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id, err = ld.varintField(w)
					if err != nil {
						return nil, err
					}
				case 4: // line; first line is the leaf after inlining
					lmsg, err := ld.msg(w)
					if err != nil {
						return nil, err
					}
					fd := &decoder{b: lmsg}
					for !fd.done() {
						fn, fw, err := fd.tag()
						if err != nil {
							return nil, err
						}
						if fn == 1 {
							fid, err := fd.varintField(fw)
							if err != nil {
								return nil, err
							}
							if leafFn == 0 {
								leafFn = fid
							}
						} else if err := fd.skip(fw); err != nil {
							return nil, err
						}
					}
				default:
					if err := ld.skip(w); err != nil {
						return nil, err
					}
				}
			}
			if id != 0 && leafFn != 0 {
				p.locFunc[id] = leafFn
			}
		case 5: // function
			msg, err := d.msg(wt)
			if err != nil {
				return nil, err
			}
			var id, name uint64
			fd := &decoder{b: msg}
			for !fd.done() {
				n, w, err := fd.tag()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					id, err = fd.varintField(w)
				case 2:
					name, err = fd.varintField(w)
				default:
					err = fd.skip(w)
				}
				if err != nil {
					return nil, err
				}
			}
			if id != 0 {
				funcNameIdx[id] = name
			}
		case 6: // string_table
			msg, err := d.msg(wt)
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(msg))
		case 10: // duration_nanos
			v, err := d.varintField(wt)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			msg, err := d.msg(wt)
			if err != nil {
				return nil, err
			}
			periodType, err = parseValueType(msg)
			if err != nil {
				return nil, err
			}
		case 12: // period
			v, err := d.varintField(wt)
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := d.skip(wt); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt[0]), Unit: str(vt[1])})
	}
	p.PeriodType = ValueType{Type: str(periodType[0]), Unit: str(periodType[1])}
	for id, idx := range funcNameIdx {
		p.funcName[id] = str(idx)
	}
	for _, rs := range samples {
		s := Sample{LocationIDs: rs.locs, Values: rs.values}
		for _, l := range rs.labels {
			k := str(l.key)
			if k == "" {
				continue
			}
			if l.str != 0 {
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[k] = str(l.str)
			} else {
				if s.NumLabels == nil {
					s.NumLabels = map[string]int64{}
				}
				s.NumLabels[k] = l.num
			}
		}
		p.Samples = append(p.Samples, s)
	}
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("no sample types: not a pprof profile?")
	}
	return p, nil
}

func parseValueType(msg []byte) ([2]uint64, error) {
	var vt [2]uint64
	d := &decoder{b: msg}
	for !d.done() {
		n, w, err := d.tag()
		if err != nil {
			return vt, err
		}
		switch n {
		case 1:
			vt[0], err = d.varintField(w)
		case 2:
			vt[1], err = d.varintField(w)
		default:
			err = d.skip(w)
		}
		if err != nil {
			return vt, err
		}
	}
	return vt, nil
}

// decoder walks protobuf wire format over a byte slice.
type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.b) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.b) {
			return 0, fmt.Errorf("truncated varint at %d", d.pos)
		}
		c := d.b[d.pos]
		d.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("varint overflow at %d", d.pos)
		}
	}
}

// tag reads a field tag, returning field number and wire type.
func (d *decoder) tag() (int, int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads a length-delimited payload.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.b)-d.pos) < n {
		return nil, fmt.Errorf("truncated bytes field at %d (want %d)", d.pos, n)
	}
	out := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// msg returns the payload of a length-delimited field, erroring on
// any other wire type.
func (d *decoder) msg(wt int) ([]byte, error) {
	if wt != 2 {
		return nil, fmt.Errorf("wire type %d where message expected at %d", wt, d.pos)
	}
	return d.bytes()
}

// varintField reads a scalar that must be varint-encoded.
func (d *decoder) varintField(wt int) (uint64, error) {
	if wt != 0 {
		return 0, fmt.Errorf("wire type %d where varint expected at %d", wt, d.pos)
	}
	return d.varint()
}

// repeatedVarint reads one element (wire type 0) or a packed run
// (wire type 2) of a repeated scalar field.
func (d *decoder) repeatedVarint(wt int) ([]uint64, error) {
	switch wt {
	case 0:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	case 2:
		payload, err := d.bytes()
		if err != nil {
			return nil, err
		}
		pd := &decoder{b: payload}
		var out []uint64
		for !pd.done() {
			v, err := pd.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wire type %d for repeated varint at %d", wt, d.pos)
	}
}

// skip discards one field payload of the given wire type.
func (d *decoder) skip(wt int) error {
	switch wt {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		if len(d.b)-d.pos < 8 {
			return fmt.Errorf("truncated fixed64 at %d", d.pos)
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes()
		return err
	case 5:
		if len(d.b)-d.pos < 4 {
			return fmt.Errorf("truncated fixed32 at %d", d.pos)
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("unsupported wire type %d at %d", wt, d.pos)
	}
}
