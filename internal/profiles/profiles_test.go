package profiles

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"
)

// --- minimal protobuf writer for fixtures ---

type enc struct{ b []byte }

func (e *enc) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *enc) tag(num, wt int) { e.varint(uint64(num)<<3 | uint64(wt)) }

func (e *enc) uintField(num int, v uint64) {
	e.tag(num, 0)
	e.varint(v)
}

func (e *enc) bytesField(num int, b []byte) {
	e.tag(num, 2)
	e.varint(uint64(len(b)))
	e.b = append(e.b, b...)
}

func (e *enc) msgField(num int, fill func(*enc)) {
	var sub enc
	fill(&sub)
	e.bytesField(num, sub.b)
}

// fixtureProfile builds a two-sample CPU profile by hand:
// strtab: 0:"" 1:"samples" 2:"count" 3:"cpu" 4:"nanoseconds"
//         5:"phase" 6:"host" 7:"main.hot" 8:"kernel" 9:"blocked"
// sample A: 30ns, labels phase=host kernel=blocked, loc 1 (main.hot)
// sample B: 10ns, no labels, loc 1
func fixtureProfile(t *testing.T, packed bool) []byte {
	t.Helper()
	var e enc
	e.msgField(1, func(s *enc) { // sample_type samples/count
		s.uintField(1, 1)
		s.uintField(2, 2)
	})
	e.msgField(1, func(s *enc) { // sample_type cpu/nanoseconds
		s.uintField(1, 3)
		s.uintField(2, 4)
	})
	e.msgField(2, func(s *enc) { // sample A
		if packed {
			s.bytesField(1, []byte{1})    // location_id [1]
			s.bytesField(2, []byte{3, 30}) // value [3, 30]
		} else {
			s.uintField(1, 1)
			s.uintField(2, 3)
			s.uintField(2, 30)
		}
		s.msgField(3, func(l *enc) { // phase=host
			l.uintField(1, 5)
			l.uintField(2, 6)
		})
		s.msgField(3, func(l *enc) { // kernel=blocked
			l.uintField(1, 8)
			l.uintField(2, 9)
		})
	})
	e.msgField(2, func(s *enc) { // sample B, unlabeled
		s.uintField(1, 1)
		s.uintField(2, 1)
		s.uintField(2, 10)
	})
	e.msgField(4, func(l *enc) { // location 1 -> function 1
		l.uintField(1, 1)
		l.msgField(4, func(ln *enc) { ln.uintField(1, 1) })
	})
	e.msgField(5, func(f *enc) { // function 1 = main.hot
		f.uintField(1, 1)
		f.uintField(2, 7)
	})
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "phase", "host", "main.hot", "kernel", "blocked"} {
		e.bytesField(6, []byte(s))
	}
	e.uintField(10, 40) // duration_nanos
	e.msgField(11, func(s *enc) {
		s.uintField(1, 3)
		s.uintField(2, 4)
	})
	e.uintField(12, 10) // period
	return e.b
}

func TestParseFixture(t *testing.T) {
	for _, packed := range []bool{false, true} {
		raw := fixtureProfile(t, packed)
		// Exercise the gzip path for the packed variant.
		data := raw
		if packed {
			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			zw.Write(raw)
			zw.Close()
			data = zbuf.Bytes()
		}
		p, err := Parse(data)
		if err != nil {
			t.Fatalf("packed=%v: Parse: %v", packed, err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[1].Type != "cpu" || p.SampleTypes[1].Unit != "nanoseconds" {
			t.Fatalf("packed=%v: sample types = %+v", packed, p.SampleTypes)
		}
		if p.DefaultValueIndex() != 1 {
			t.Fatalf("default value index = %d, want 1", p.DefaultValueIndex())
		}
		if len(p.Samples) != 2 {
			t.Fatalf("packed=%v: %d samples, want 2", packed, len(p.Samples))
		}
		a := p.Samples[0]
		if a.Labels["phase"] != "host" || a.Labels["kernel"] != "blocked" {
			t.Fatalf("sample A labels = %v", a.Labels)
		}
		if a.Values[1] != 30 {
			t.Fatalf("sample A value = %v", a.Values)
		}
		if got := p.FuncName(1); got != "main.hot" {
			t.Fatalf("FuncName(1) = %q", got)
		}
		if p.Period != 10 || p.DurationNanos != 40 {
			t.Fatalf("period=%d duration=%d", p.Period, p.DurationNanos)
		}
	}
}

func TestAttributeFixture(t *testing.T) {
	p, err := Parse(fixtureProfile(t, false))
	if err != nil {
		t.Fatal(err)
	}
	a := Attribute(p)
	if a.Total != 40 || a.Attributed != 30 || a.Unattributed != 10 {
		t.Fatalf("total=%d attributed=%d unattributed=%d", a.Total, a.Attributed, a.Unattributed)
	}
	if got := a.AttributedFrac(); got != 0.75 {
		t.Fatalf("AttributedFrac = %v, want 0.75", got)
	}
	if len(a.Phases) != 1 || a.Phases[0].Phase != "host" || a.Phases[0].Value != 30 {
		t.Fatalf("phases = %+v", a.Phases)
	}
	if rows := a.ByLabel["kernel"]; len(rows) != 1 || rows[0].Phase != "blocked" {
		t.Fatalf("by kernel = %+v", a.ByLabel["kernel"])
	}
	if len(a.TopUnlabeled) != 1 || a.TopUnlabeled[0].Func != "main.hot" {
		t.Fatalf("top unlabeled = %+v", a.TopUnlabeled)
	}
	if unk := a.UnknownPhases(); len(unk) != 0 {
		t.Fatalf("unknown phases = %v", unk)
	}
	var buf bytes.Buffer
	a.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"host", "attributed to known phases: 75.0%", "main.hot"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestAttributeFallsBackPastEmptyColumn(t *testing.T) {
	// Heap profile shape after a final GC: the default inuse_space
	// column is all zeros, alloc_space still carries weight.
	// strtab: 0:"" 1:"alloc_space" 2:"bytes" 3:"inuse_space"
	//         4:"phase" 5:"host"
	var e enc
	e.msgField(1, func(s *enc) { // sample_type alloc_space/bytes
		s.uintField(1, 1)
		s.uintField(2, 2)
	})
	e.msgField(1, func(s *enc) { // sample_type inuse_space/bytes
		s.uintField(1, 3)
		s.uintField(2, 2)
	})
	e.msgField(2, func(s *enc) { // one sample: 4KiB allocated, 0 live
		s.uintField(2, 4096)
		s.uintField(2, 0)
		s.msgField(3, func(l *enc) { // phase=host
			l.uintField(1, 4)
			l.uintField(2, 5)
		})
	})
	for _, s := range []string{"", "alloc_space", "bytes", "inuse_space", "phase", "host"} {
		e.bytesField(6, []byte(s))
	}
	p, err := Parse(e.b)
	if err != nil {
		t.Fatal(err)
	}
	a := Attribute(p)
	if a.SampleType.Type != "alloc_space" {
		t.Fatalf("sample type = %+v, want alloc_space fallback", a.SampleType)
	}
	if a.Total != 4096 || a.Attributed != 4096 {
		t.Fatalf("total=%d attributed=%d, want 4096/4096", a.Total, a.Attributed)
	}
}

// spin burns CPU so the profiler has something to sample.
func spin(d time.Duration) float64 {
	deadline := time.Now().Add(d)
	x := 1.0001
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 1e-9
		}
	}
	return x
}

func TestLabelRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("needs CPU profiling time")
	}
	// CPU sampling is statistical: retry a few times before deciding
	// the labels really are missing.
	for attempt := 0; attempt < 4; attempt++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Skipf("cannot start CPU profile: %v", err)
		}
		SetPhase(PhaseHost, "kernel", "spin")
		spin(250 * time.Millisecond)
		Clear()
		pprof.StopCPUProfile()

		p, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		a := Attribute(p)
		if a.Total == 0 {
			continue // no samples landed; retry
		}
		if len(a.Phases) > 0 && a.Phases[0].Phase == PhaseHost {
			if rows := a.ByLabel["kernel"]; len(rows) == 0 || rows[0].Phase != "spin" {
				t.Fatalf("kernel sub-label missing: %+v", a.ByLabel)
			}
			return // success
		}
	}
	t.Skip("profiler produced no labeled samples after retries (constrained environment)")
}

func TestCaptureWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	c, err := StartCapture(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	SetPhase(PhaseConvert)
	spin(50 * time.Millisecond)
	Clear()
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s: missing or empty (err=%v)", path, err)
		}
		if _, err := ParseFile(path); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}

func TestCaptureInert(t *testing.T) {
	c, err := StartCapture("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}
