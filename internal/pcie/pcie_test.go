package pcie

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGen2x16(t *testing.T) {
	l := Gen2x16()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// One bandwidth-worth of bytes ≈ 1 s + latency.
	got := l.TransferSeconds(int64(l.BytesPerSecond))
	if math.Abs(got-(1+l.LatencySeconds)) > 1e-9 {
		t.Errorf("1-second transfer = %g s", got)
	}
}

func TestZeroByteTransferFree(t *testing.T) {
	l := Gen2x16()
	if l.TransferSeconds(0) != 0 {
		t.Error("zero-byte transfer should be free")
	}
	if l.TransferSeconds(-5) != 0 {
		t.Error("negative size should be free")
	}
}

func TestLatencyDominatesSmallTransfers(t *testing.T) {
	l := Gen2x16()
	small := l.TransferSeconds(64)
	if small < l.LatencySeconds || small > 2*l.LatencySeconds {
		t.Errorf("64 B transfer = %g, should be latency-dominated", small)
	}
}

func TestRoundTrip(t *testing.T) {
	l := Gen2x16()
	rt := l.RoundTripSeconds(1000, 2000)
	want := l.TransferSeconds(1000) + l.TransferSeconds(2000)
	if rt != want {
		t.Errorf("round trip = %g, want %g", rt, want)
	}
	// Upload only.
	if l.RoundTripSeconds(1000, 0) != l.TransferSeconds(1000) {
		t.Error("empty download should cost nothing")
	}
}

func TestTransferMonotone(t *testing.T) {
	l := Gen2x16()
	f := func(a, b int64) bool {
		x, y := a&0xfffffff, b&0xfffffff
		if x > y {
			x, y = y, x
		}
		return l.TransferSeconds(x) <= l.TransferSeconds(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Link{BytesPerSecond: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (&Link{BytesPerSecond: 1, LatencySeconds: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}
