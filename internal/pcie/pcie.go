// Package pcie models the host↔device PCI-Express link whose limited
// bandwidth §II-B identifies as the decisive bottleneck for spMVM with
// few non-zeros per row: the RHS vector must be uploaded and the LHS
// vector downloaded for every multiplication, and in the distributed
// code all MPI traffic crosses this bus too.
package pcie

import "fmt"

// Link is a PCIe transfer model with fixed per-transfer latency and a
// sustained bandwidth. The paper reasons in terms of the ratio
// B_GPU/B_PCI ≈ 10–20; the default corresponds to a PCIe 2.0 ×16 slot
// as on the Dirac nodes.
type Link struct {
	Name string
	// BytesPerSecond is the sustained host↔device copy bandwidth.
	BytesPerSecond float64
	// LatencySeconds is the fixed setup cost per transfer (driver call,
	// DMA setup); it dominates small transfers such as the halo
	// buffers at high node counts.
	LatencySeconds float64
}

// Gen2x16 returns a PCIe 2.0 ×16 link as cudaMemcpy delivers it on the
// paper's era of hosts: ~5 GB/s sustained of the 8 GB/s raw rate and
// ~12 µs per-transfer overhead (driver call + DMA setup).
func Gen2x16() *Link {
	return &Link{Name: "PCIe 2.0 x16", BytesPerSecond: 5e9, LatencySeconds: 12e-6}
}

// Validate reports configuration errors.
func (l *Link) Validate() error {
	if l.BytesPerSecond <= 0 {
		return fmt.Errorf("pcie: %s: non-positive bandwidth", l.Name)
	}
	if l.LatencySeconds < 0 {
		return fmt.Errorf("pcie: %s: negative latency", l.Name)
	}
	return nil
}

// TransferSeconds returns the wallclock cost of moving n bytes in one
// transfer. Zero-byte transfers are free (no driver call issued).
func (l *Link) TransferSeconds(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return l.LatencySeconds + float64(n)/l.BytesPerSecond
}

// RoundTripSeconds returns the cost of uploading up bytes and
// downloading down bytes as two separate transfers, the per-spMVM
// T_PCI of Eq. (2) when up = down = 8N (DP).
func (l *Link) RoundTripSeconds(up, down int64) float64 {
	return l.TransferSeconds(up) + l.TransferSeconds(down)
}
