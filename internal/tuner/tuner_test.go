package tuner

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

func zoo(t *testing.T) map[string]*matrix.CSR[float64] {
	t.Helper()
	return map[string]*matrix.CSR[float64]{
		"banded":   matgen.Banded(600, 4, 20, 50, 7),
		"powerlaw": matgen.PowerLaw(500, 2, 80, 0.7, 11),
		"random":   matgen.Random(400, 3, 10, 13),
		"fem":      matgen.Stencil3D(8, 8, 8),
	}
}

// TestTuneWinnerBeatsOrMatchesFixedFormats: across the zoo, the tuned
// winner's measured speed must be within tolerance of every fixed
// measured cell — in particular it can never lose to the pJDS preset,
// which is never pruned.
func TestTuneWinnerBeatsOrMatchesFixedFormats(t *testing.T) {
	for name, m := range zoo(t) {
		reg := telemetry.NewRegistry()
		e, err := Tune(m, name, Config{Workers: 2, Metrics: reg})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Winner.MeasuredNsPerNnz <= 0 {
			t.Fatalf("%s: winner has no measurement", name)
		}
		sawPJDS := false
		for _, c := range e.Cells {
			if c.Format == "pjds" {
				sawPJDS = true
				if c.Pruned {
					t.Fatalf("%s: pJDS reference cell was pruned", name)
				}
			}
			if c.Pruned {
				if c.MeasuredNsPerNnz != 0 {
					t.Fatalf("%s: pruned cell %s has a measurement", name, c.Label())
				}
				continue
			}
			if e.Winner.MeasuredNsPerNnz > c.MeasuredNsPerNnz*1.001 {
				t.Errorf("%s: winner %s (%.3f ns/nnz) slower than %s (%.3f)",
					name, e.Winner.Label(), e.Winner.MeasuredNsPerNnz, c.Label(), c.MeasuredNsPerNnz)
			}
			if c.ModelBytesPerNnz <= 0 {
				t.Errorf("%s: cell %s lacks a model score", name, c.Label())
			}
		}
		if !sawPJDS {
			t.Fatalf("%s: grid lost the pJDS reference", name)
		}
	}
}

// TestTuneSpansAndCounters: the sweep emits tune-lane spans and the
// tuner_* counters.
func TestTuneSpansAndCounters(t *testing.T) {
	m := matgen.PowerLaw(300, 2, 50, 0.7, 3)
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog()
	if _, err := Tune(m, "pl", Config{Workers: 1, Metrics: reg, Spans: spans}); err != nil {
		t.Fatal(err)
	}
	got := spans.Spans()
	if len(got) < 2 {
		t.Fatalf("expected model + measure spans, got %d", len(got))
	}
	for _, s := range got {
		if s.Lane != SpanLane || s.Cat != SpanLane {
			t.Fatalf("span %q on lane %q cat %q, want tune", s.Name, s.Lane, s.Cat)
		}
		if s.End < s.Start {
			t.Fatalf("span %q ends before it starts", s.Name)
		}
	}
	var sweeps, measured float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "tuner_sweeps_total":
			sweeps = s.Value
		case "tuner_candidates_measured_total":
			measured = s.Value
		}
	}
	if sweeps != 1 || measured < 2 {
		t.Fatalf("sweeps=%g measured=%g", sweeps, measured)
	}
}

// TestDBRoundTripTolerant: entries survive the JSONL round trip with
// corrupt and foreign-schema trailing lines interleaved, and a missing
// file reads as empty.
func TestDBRoundTripTolerant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "tuning.jsonl")
	if es, err := Read(path); err != nil || es != nil {
		t.Fatalf("missing file: %v %v", es, err)
	}
	e1 := Entry{Fingerprint: "f1", Device: "devA", Matrix: "m1",
		Winner: Cell{Format: "sell", C: 8, Sigma: 256, MeasuredNsPerNnz: 1.5}}
	e2 := Entry{Fingerprint: "f1", Device: "devA", Matrix: "m1",
		Winner: Cell{Format: "cmrs", Height: 16, MeasuredNsPerNnz: 1.2}}
	if err := Append(path, e1); err != nil {
		t.Fatal(err)
	}
	// Corruption between valid records: truncated JSON, wrong schema,
	// garbage bytes.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"schema\":\"pjds-tuning/v1\",\"fingerprint\":\"trunc\n")
	f.WriteString("{\"schema\":\"other/v9\",\"fingerprint\":\"f9\"}\n")
	f.WriteString("\x00\x01 not json at all\n")
	f.Close()
	if err := Append(path, e2); err != nil {
		t.Fatal(err)
	}
	es, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("read %d entries, want 2", len(es))
	}
	if es[0].Schema != Schema || es[0].GitRev == "" && es[0].Host.GoVersion == "" {
		t.Error("bookkeeping fields not filled on append")
	}
	got, ok := Lookup(es, "f1", "devA")
	if !ok || got.Winner.Label() != "CMRS-h16" {
		t.Fatalf("Lookup returned %+v, want the newest (CMRS) entry", got.Winner)
	}
	if _, ok := Lookup(es, "f1", "devB"); ok {
		t.Error("Lookup matched the wrong device")
	}
}

// TestTuneOrLookupCachesByFingerprint: the first call sweeps and
// persists, the second answers from the DB without re-sweeping, and a
// structurally different matrix misses.
func TestTuneOrLookupCachesByFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuning.jsonl")
	m := matgen.Banded(300, 3, 12, 30, 5)
	reg := telemetry.NewRegistry()
	cfg := Config{Workers: 1, Metrics: reg}

	e1, hit, err := TuneOrLookup(m, "banded", path, cfg)
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	e2, hit, err := TuneOrLookup(m, "banded", path, cfg)
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	if e1.Winner.Label() != e2.Winner.Label() || e1.Fingerprint != e2.Fingerprint {
		t.Fatalf("cache returned a different winner: %+v vs %+v", e1.Winner, e2.Winner)
	}
	var sweeps, hits, misses float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "tuner_sweeps_total":
			sweeps = s.Value
		case "tuner_cache_hits_total":
			hits = s.Value
		case "tuner_cache_misses_total":
			misses = s.Value
		}
	}
	if sweeps != 1 || hits != 1 || misses != 1 {
		t.Fatalf("sweeps=%g hits=%g misses=%g, want 1/1/1", sweeps, hits, misses)
	}

	// Same shape, different structure → different fingerprint → miss.
	other := matgen.Random(300, 3, 12, 99)
	if Fingerprint(m) == Fingerprint(other) {
		t.Fatal("fingerprints collide across different structures")
	}
	if _, hit, err := TuneOrLookup(other, "random", path, cfg); err != nil || hit {
		t.Fatalf("different structure: hit=%v err=%v", hit, err)
	}
}

// TestGridShape: presets present, dedup on small n, CMRS strips fit
// the warp, σ never exceeds n.
func TestGridShape(t *testing.T) {
	g := Grid(100, nil)
	seen := map[string]bool{}
	var haveCRS, havePJDS, haveCMRS bool
	for _, c := range g {
		if seen[c.key()] {
			t.Fatalf("duplicate grid cell %s", c.Label())
		}
		seen[c.key()] = true
		switch c.Format {
		case "crs":
			haveCRS = true
		case "pjds":
			havePJDS = true
		case "cmrs":
			haveCMRS = true
			if c.Height > 32 {
				t.Fatalf("CMRS height %d exceeds warp", c.Height)
			}
		case "sell":
			if c.Sigma > 100 || c.Sigma < 1 {
				t.Fatalf("σ = %d outside [1, n]", c.Sigma)
			}
		}
	}
	if !haveCRS || !havePJDS || !haveCMRS {
		t.Fatal("grid lost a preset contender")
	}
}

// TestModelPruningMonotone: with a tight band, strictly worse-model
// cells get pruned; the winner's model score is finite and positive.
func TestModelPruningMonotone(t *testing.T) {
	m := matgen.PowerLaw(400, 2, 60, 0.8, 17)
	e, err := Tune(m, "pl", Config{Workers: 1, PruneFactor: 1.01, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, c := range e.Cells {
		if c.Pruned {
			pruned++
		}
	}
	if pruned == 0 {
		t.Error("a 1.01× band pruned nothing on a skewed matrix")
	}
	if math.IsNaN(e.Winner.ModelBytesPerNnz) || e.Winner.ModelBytesPerNnz <= 0 {
		t.Errorf("winner model score %g", e.Winner.ModelBytesPerNnz)
	}
}
