// Package tuner selects the fastest storage format and geometry for a
// matrix by sweeping a (C, σ) grid — plus the CRS, pJDS and CMRS
// contenders — with real timed host-kernel replays, pruning hopeless
// grid cells with the Eq. 1 traffic model first. Winners persist in a
// runledger-style JSONL database keyed by matrix fingerprint and
// device, so a matrix is tuned once and every later upload or
// benchmark run reuses the stored pick.
package tuner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"pjds/internal/matrix"
	"pjds/internal/runledger"
)

// Schema identifies the tuning-DB line format. Readers skip lines
// whose schema they do not recognize.
const Schema = "pjds-tuning/v1"

// DefaultPath is where tuning entries live unless a tool overrides it.
const DefaultPath = ".spmv/tuning.jsonl"

// Cell is one grid candidate: a format plus its geometry, the model's
// traffic prediction, and (when not pruned) the measured replay speed.
type Cell struct {
	// Format is "crs", "pjds", "sell" or "cmrs".
	Format string `json:"format"`
	// C and Sigma are the SELL chunk height and sorting window
	// (pjds records its C=32, σ=n equivalent); Height is the CMRS
	// strip height.
	C      int `json:"c,omitempty"`
	Sigma  int `json:"sigma,omitempty"`
	Height int `json:"height,omitempty"`
	// Beta is the predicted zero-padding overhead of the layout.
	Beta float64 `json:"beta"`
	// ModelBytesPerNnz is the Eq. 1-style traffic prediction used for
	// pruning and for the measured-vs-model report.
	ModelBytesPerNnz float64 `json:"model_bytes_per_nnz"`
	// MeasuredNsPerNnz is the best-of-iters replay time; 0 when pruned.
	MeasuredNsPerNnz float64 `json:"measured_ns_per_nnz,omitempty"`
	// Pruned marks cells the model rejected before measurement.
	Pruned bool `json:"pruned,omitempty"`
}

// Label renders the cell for reports: CRS, pJDS, SELL-8-256, CMRS-h16.
func (c Cell) Label() string {
	switch c.Format {
	case "crs":
		return "CRS"
	case "pjds":
		return "pJDS"
	case "cmrs":
		return fmt.Sprintf("CMRS-h%d", c.Height)
	default:
		return fmt.Sprintf("SELL-%d-%d", c.C, c.Sigma)
	}
}

// key identifies a cell inside one sweep (grid dedup).
func (c Cell) key() string {
	return fmt.Sprintf("%s/%d/%d/%d", c.Format, c.C, c.Sigma, c.Height)
}

// Entry is one persisted sweep: the matrix/device key, the full grid
// with model and measurement per cell, and the winner.
type Entry struct {
	Schema      string         `json:"schema"`
	Time        string         `json:"time"` // RFC3339
	GitRev      string         `json:"git_rev"`
	Host        runledger.Host `json:"host"`
	Matrix      string         `json:"matrix,omitempty"`
	Fingerprint string         `json:"fingerprint"`
	Device      string         `json:"device"`
	Rows        int            `json:"rows"`
	Cols        int            `json:"cols"`
	Nnz         int            `json:"nnz"`
	Workers     int            `json:"workers"`
	Winner      Cell           `json:"winner"`
	Cells       []Cell         `json:"cells"`
}

// Fingerprint hashes the matrix structure — dimensions plus the full
// row-length profile — so two matrices with the same shape but
// different sparsity patterns tune independently. Values are not
// hashed: tuning depends on structure only.
func Fingerprint[T matrix.Float](m *matrix.CSR[T]) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(m.NRows)
	put(m.NCols)
	put(m.Nnz())
	for i := 0; i < m.NRows; i++ {
		put(m.RowLen(i))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Append writes e as one JSONL line at path (creating the parent
// directory), filling missing bookkeeping fields. One O_APPEND write,
// so concurrent appenders interleave whole records.
func Append(path string, e Entry) error {
	if e.Schema == "" {
		e.Schema = Schema
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if e.GitRev == "" {
		e.GitRev = runledger.GitRev()
	}
	if e.Host == (runledger.Host{}) {
		e.Host = runledger.HostInfo()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("tuner: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("tuner: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("tuner: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("tuner: %w", werr)
	}
	return nil
}

// Read loads all recognizable entries. Malformed or foreign-schema
// lines are skipped, not fatal; a missing file reads as empty.
func Read(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tuner: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Entry
	for sc.Scan() {
		var e Entry
		if json.Unmarshal(sc.Bytes(), &e) != nil || e.Schema != Schema {
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("tuner: %w", err)
	}
	return out, nil
}

// Lookup returns the newest entry matching the fingerprint and device
// (file order is append order, so the last match wins). An empty
// device matches any device — matinfo -recommend uses it to surface
// whatever sweep exists for a structure.
func Lookup(entries []Entry, fingerprint, device string) (Entry, bool) {
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Fingerprint == fingerprint && (device == "" || entries[i].Device == device) {
			return entries[i], true
		}
	}
	return Entry{}, false
}
