package tuner

import (
	"fmt"
	"time"

	"pjds/internal/advisor"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/hostkernel"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// SpanLane is the trace lane tuner spans are emitted on, so
// perfreport's critical-path analysis can attribute tuning cost
// separately from kernels and transfers.
const SpanLane = "tune"

// Config parameterizes a sweep. The zero value tunes for the Fermi
// C2070 with the process-default worker count, one warmup and three
// timed replays per survivor, a 1.5× model pruning band, and the
// default DB path.
type Config struct {
	// Device keys the tuning entry and bounds the grid (CMRS strips
	// must fit a warp); nil selects gpu.TeslaC2070().
	Device *gpu.Device
	// Workers is the host-kernel worker count used for the replays
	// (0 = process default). Recorded in the entry: timings are only
	// comparable at the same width.
	Workers int
	// Warmup and Iters are the per-candidate replay counts (0 = 1
	// warmup, 3 timed iterations; the best iteration counts).
	Warmup, Iters int
	// PruneFactor drops grid cells whose modeled traffic exceeds
	// PruneFactor × the grid's best model before any measurement
	// (0 = 1.5). The pJDS reference cell is never pruned — the
	// measured-vs-reference gate needs it.
	PruneFactor float64
	// Grid overrides the default candidate grid when non-nil.
	Grid []Cell
	// Metrics receives the tuner_* counters; nil publishes to
	// telemetry.Default().
	Metrics *telemetry.Registry
	// Spans, when non-nil, receives one span per sweep stage on the
	// "tune" lane (offsets from the sweep start).
	Spans *telemetry.SpanLog
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
}

func (c Config) device() *gpu.Device {
	if c.Device == nil {
		return gpu.TeslaC2070()
	}
	return c.Device
}

func (c Config) now() func() time.Time {
	if c.Now == nil {
		return time.Now
	}
	return c.Now
}

func (c Config) iters() (warmup, timed int) {
	warmup, timed = c.Warmup, c.Iters
	if warmup <= 0 {
		warmup = 1
	}
	if timed <= 0 {
		timed = 3
	}
	return
}

func (c Config) pruneFactor() float64 {
	if c.PruneFactor <= 0 {
		return 1.5
	}
	return c.PruneFactor
}

func (c Config) metrics() *telemetry.Registry {
	if c.Metrics == nil {
		return telemetry.Default()
	}
	return c.Metrics
}

// Grid builds the default candidate grid for an n-row matrix: the CRS
// and pJDS presets, SELL-C-σ over C ∈ {4, 8, 16, 32} × σ ∈ {1, 256,
// 4096, n}, and CMRS strip heights {8, 32} clamped to the warp size.
// Degenerate duplicates (σ clamping collapses cells on small
// matrices) are deduplicated, keeping first occurrence order.
func Grid(n int, dev *gpu.Device) []Cell {
	if dev == nil {
		dev = gpu.TeslaC2070()
	}
	cells := []Cell{
		{Format: "crs"},
		{Format: "pjds", C: 32, Sigma: n},
	}
	for _, c := range []int{4, 8, 16, 32} {
		for _, sigma := range []int{1, 256, 4096, n} {
			if sigma > n {
				sigma = n
			}
			if sigma < 1 {
				sigma = 1
			}
			cells = append(cells, Cell{Format: "sell", C: c, Sigma: sigma})
		}
	}
	for _, h := range []int{8, 32} {
		if h > dev.WarpSize {
			h = dev.WarpSize
		}
		if h > formats.MaxStripHeight {
			h = formats.MaxStripHeight
		}
		cells = append(cells, Cell{Format: "cmrs", Height: h})
	}
	seen := make(map[string]bool, len(cells))
	out := cells[:0]
	for _, c := range cells {
		if !seen[c.key()] {
			seen[c.key()] = true
			out = append(out, c)
		}
	}
	return out
}

// KernelFor instantiates the host kernel a cell names. All four
// contenders run in the original basis and are bit-identical to the
// naive reference, so a tuned pick can always be digest-checked
// against naive. The pJDS cell runs as its SELL-32-∞ equivalent.
func KernelFor(c Cell, m *matrix.CSR[float64], workers int, reg *telemetry.Registry) (hostkernel.Kernel, error) {
	opt := hostkernel.Options{Workers: workers, Metrics: reg}
	switch c.Format {
	case "crs":
		return hostkernel.New(hostkernel.KindBlocked, m, opt)
	case "pjds":
		opt.C, opt.Sigma = 32, m.NRows
		if opt.Sigma < 1 {
			opt.Sigma = 1
		}
		return hostkernel.New(hostkernel.KindSELL, m, opt)
	case "sell":
		opt.C, opt.Sigma = c.C, c.Sigma
		return hostkernel.New(hostkernel.KindSELL, m, opt)
	case "cmrs":
		opt.C = c.Height
		return hostkernel.New(hostkernel.KindCMRS, m, opt)
	}
	return nil, fmt.Errorf("tuner: unknown cell format %q", c.Format)
}

// modelBytesPerNnz is the Eq. 1 traffic prediction the pruning pass
// ranks cells by (see advisor.RankFormats for the derivation).
func modelBytesPerNnz(c *Cell, lens []int, alpha, nnzr float64, dev *gpu.Device) float64 {
	base := 8*alpha + 16/nnzr
	switch c.Format {
	case "crs":
		gather := float64(dev.SegmentBytes) / 16
		if gather < 1 {
			gather = 1
		}
		return 12*gather + base
	case "cmrs":
		return 13 + base
	case "pjds":
		c.Beta = formats.EstimateBeta(lens, 32, len(lens))
	default:
		c.Beta = formats.EstimateBeta(lens, c.C, c.Sigma)
	}
	return 12*(1+c.Beta) + base
}

// Tune sweeps the grid for m and returns the completed entry (not yet
// persisted — TuneOrLookup handles the DB round trip). Every cell
// first gets its model score; cells beyond the pruning band are
// skipped, survivors are measured with warmup + best-of-iters timed
// replays of the real host kernels.
func Tune(m *matrix.CSR[float64], name string, cfg Config) (*Entry, error) {
	dev := cfg.device()
	now := cfg.now()
	reg := cfg.metrics()
	t0 := now()
	span := func(stage string, start time.Time) {
		if cfg.Spans == nil {
			return
		}
		cfg.Spans.Add(telemetry.Span{
			Lane: SpanLane, Cat: SpanLane, Name: stage,
			Start: start.Sub(t0).Seconds(), End: now().Sub(t0).Seconds(),
		})
	}

	st := matrix.ComputeStats(m)
	lens := make([]int, m.NRows)
	for i := range lens {
		lens[i] = m.RowLen(i)
	}
	alpha := advisor.EstimateAlpha(st, dev)
	nnzr := st.AvgRowLen
	if nnzr <= 0 {
		nnzr = 1
	}

	cells := cfg.Grid
	if cells == nil {
		cells = Grid(m.NRows, dev)
	}
	cells = append([]Cell(nil), cells...)

	// Model pass: score every cell, then prune beyond the band.
	tModel := now()
	best := 0.0
	for i := range cells {
		cells[i].ModelBytesPerNnz = modelBytesPerNnz(&cells[i], lens, alpha, nnzr, dev)
		if i == 0 || cells[i].ModelBytesPerNnz < best {
			best = cells[i].ModelBytesPerNnz
		}
	}
	band := best * cfg.pruneFactor()
	pruned := 0
	for i := range cells {
		if cells[i].Format != "pjds" && cells[i].ModelBytesPerNnz > band {
			cells[i].Pruned = true
			pruned++
		}
	}
	span("model-prune", tModel)

	reg.Help("tuner_candidates_pruned_total", "grid cells rejected by the Eq. 1 model before measurement")
	reg.Counter("tuner_candidates_pruned_total").Add(float64(pruned))

	// Measurement pass: real timed replays of the surviving kernels.
	warmup, iters := cfg.iters()
	nnz := m.Nnz()
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + float64(i%7)*0.125
	}
	y := make([]float64, m.NRows)
	winner := -1
	for i := range cells {
		if cells[i].Pruned {
			continue
		}
		tc := now()
		k, err := KernelFor(cells[i], m, cfg.Workers, nil)
		if err != nil {
			return nil, err
		}
		bestSec := 0.0
		for it := 0; it < warmup+iters; it++ {
			ts := now()
			if err := k.MulVec(y, x); err != nil {
				k.Close()
				return nil, err
			}
			sec := now().Sub(ts).Seconds()
			if it >= warmup && (bestSec == 0 || sec < bestSec) {
				bestSec = sec
			}
		}
		k.Close()
		if nnz > 0 {
			cells[i].MeasuredNsPerNnz = bestSec * 1e9 / float64(nnz)
		}
		if winner < 0 || cells[i].MeasuredNsPerNnz < cells[winner].MeasuredNsPerNnz {
			winner = i
		}
		span("measure:"+cells[i].Label(), tc)
	}
	if winner < 0 {
		return nil, fmt.Errorf("tuner: every grid cell was pruned")
	}

	reg.Help("tuner_sweeps_total", "full (C, σ) tuning sweeps executed")
	reg.Counter("tuner_sweeps_total").Inc()
	reg.Help("tuner_candidates_measured_total", "grid cells measured with timed replays")
	reg.Counter("tuner_candidates_measured_total").Add(float64(len(cells) - pruned))

	return &Entry{
		Matrix:      name,
		Fingerprint: Fingerprint(m),
		Device:      dev.Name,
		Rows:        m.NRows,
		Cols:        m.NCols,
		Nnz:         nnz,
		Workers:     cfg.Workers,
		Winner:      cells[winner],
		Cells:       cells,
	}, nil
}

// TuneOrLookup consults the DB at path ("" = DefaultPath) before
// sweeping: a stored entry for the same structure fingerprint and
// device is a cache hit and returns immediately (no re-sweep); a miss
// tunes and appends. The bool result reports the cache hit.
func TuneOrLookup(m *matrix.CSR[float64], name, path string, cfg Config) (*Entry, bool, error) {
	if path == "" {
		path = DefaultPath
	}
	reg := cfg.metrics()
	reg.Help("tuner_cache_hits_total", "tuning requests answered from the persisted DB")
	reg.Help("tuner_cache_misses_total", "tuning requests that required a sweep")
	entries, err := Read(path)
	if err != nil {
		return nil, false, err
	}
	if e, ok := Lookup(entries, Fingerprint(m), cfg.device().Name); ok {
		reg.Counter("tuner_cache_hits_total").Inc()
		return &e, true, nil
	}
	reg.Counter("tuner_cache_misses_total").Inc()
	e, err := Tune(m, name, cfg)
	if err != nil {
		return nil, false, err
	}
	if err := Append(path, *e); err != nil {
		return nil, false, err
	}
	return e, false, nil
}
