package runledger

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"pjds/internal/critpath"
)

// Cross-run trend analysis: where critpath.Diff compares exactly two
// artifacts under a tolerance band, Trend lines up any number of
// sources in chronological order — the checked-in BENCH_PR*.json
// trajectory plus live ledger entries — and classifies each metric's
// latest value against its historical best. Directions reuse the diff
// gate's heuristics; metrics with unknown direction are reported but
// never gate across runs (environments differ run to run, unlike the
// deterministic pairwise self-diff).

// Verdicts of one metric's trend.
const (
	TrendOK         = "ok"         // last value within tolerance of historical best
	TrendImproved   = "improved"   // last value is a new best beyond tolerance
	TrendWatch      = "watch"      // worse than best, but not sustained (or direction unknown)
	TrendRegression = "regression" // last Sustain points all worse than best: gate-worthy
	TrendSingle     = "single"     // seen in fewer than two sources: informational
)

// Source is one point-in-time metric set with a display name.
type Source struct {
	Name    string
	Metrics map[string]float64
}

// Point is one metric observation within a trend row.
type Point struct {
	Source string  `json:"source"`
	Value  float64 `json:"value"`
}

// TrendRow is one metric's cross-run trajectory.
type TrendRow struct {
	Metric    string  `json:"metric"`
	Points    []Point `json:"points"`
	Direction int     `json:"direction"` // +1 higher-better, -1 lower-better, 0 unknown
	Best      float64 `json:"best"`
	Last      float64 `json:"last"`
	// RelVsBest is how far the last value sits from the historical
	// best, signed so positive = worse (direction-adjusted).
	RelVsBest float64 `json:"rel_vs_best"`
	Verdict   string  `json:"verdict"`
}

// Gates reports whether this row should fail the trend gate.
func (r TrendRow) Gates() bool { return r.Verdict == TrendRegression }

// TrendOptions parameterize the analysis.
type TrendOptions struct {
	// Tolerance is the relative band around the historical best
	// within which the latest value counts as "ok" (default 0.05:
	// cross-run noise is larger than same-process pairwise noise).
	Tolerance float64
	// Sustain is how many consecutive trailing points must sit beyond
	// tolerance for a regression verdict (default 2) — one bad run is
	// "watch", a trend is a regression.
	Sustain int
	// PerMetric overrides Tolerance for metrics whose name contains
	// the key (substring match).
	PerMetric map[string]float64
}

func (o TrendOptions) tolerance(metric string) float64 {
	tol := o.Tolerance
	if tol <= 0 {
		tol = 0.05
	}
	for key, t := range o.PerMetric {
		if strings.Contains(metric, key) {
			tol = t
			break
		}
	}
	return tol
}

func (o TrendOptions) sustain() int {
	if o.Sustain <= 0 {
		return 2
	}
	return o.Sustain
}

// SourceFromJSON flattens any benchmark JSON document (BENCH_*.json,
// perfreport -json output, metrics snapshots) into a Source.
func SourceFromJSON(name string, doc []byte) (Source, error) {
	leaves, err := critpath.Flatten(doc)
	if err != nil {
		return Source{}, fmt.Errorf("runledger: %s: %w", name, err)
	}
	return Source{Name: name, Metrics: leaves}, nil
}

// SourceFromEntry exposes a ledger entry's metric sums as a Source.
func SourceFromEntry(e Entry) Source {
	name := e.Tool
	if e.Time != "" {
		name = e.Tool + "@" + e.Time
	}
	return Source{Name: name, Metrics: e.Metrics}
}

// badness returns how much worse v is than best, relative and
// direction-adjusted: positive = worse, 0 = at or beyond best.
func badness(dir int, best, v float64) float64 {
	if best == v {
		return 0
	}
	denom := math.Abs(best)
	if denom == 0 {
		denom = 1
	}
	var b float64
	switch dir {
	case +1:
		b = (best - v) / denom
	case -1:
		b = (v - best) / denom
	default:
		b = math.Abs(v-best) / denom
	}
	if b < 0 {
		return 0
	}
	return b
}

// Trend lines up sources (chronological order) and classifies every
// metric that appears in at least one of them. Rows are sorted with
// gating regressions first, then watch, then the rest by name.
func Trend(sources []Source, opt TrendOptions) []TrendRow {
	metrics := map[string][]Point{}
	for _, src := range sources {
		for name, v := range src.Metrics {
			metrics[name] = append(metrics[name], Point{Source: src.Name, Value: v})
		}
	}
	rows := make([]TrendRow, 0, len(metrics))
	for name, pts := range metrics {
		row := TrendRow{Metric: name, Points: pts, Direction: critpath.Direction(name)}
		row.Last = pts[len(pts)-1].Value
		if len(pts) < 2 {
			row.Best = row.Last
			row.Verdict = TrendSingle
			rows = append(rows, row)
			continue
		}
		best := pts[0].Value
		for _, p := range pts[1:] {
			switch row.Direction {
			case +1:
				if p.Value > best {
					best = p.Value
				}
			case -1:
				if p.Value < best {
					best = p.Value
				}
			default:
				// No direction: "best" is just the first value; any
				// drift is measured against it.
			}
		}
		row.Best = best
		tol := opt.tolerance(name)
		row.RelVsBest = badness(row.Direction, best, row.Last)
		switch {
		case row.Direction == 0:
			// Unknown direction never gates across runs; flag drift
			// beyond tolerance as watch.
			if row.RelVsBest > tol {
				row.Verdict = TrendWatch
			} else {
				row.Verdict = TrendOK
			}
		case row.RelVsBest <= tol:
			// At (or tied with) the best. Call out a fresh best that
			// beats every earlier point by more than the band.
			prevBest := pts[0].Value
			for _, p := range pts[1 : len(pts)-1] {
				switch row.Direction {
				case +1:
					if p.Value > prevBest {
						prevBest = p.Value
					}
				case -1:
					if p.Value < prevBest {
						prevBest = p.Value
					}
				}
			}
			if badness(row.Direction, row.Last, prevBest) > tol {
				row.Verdict = TrendImproved
			} else {
				row.Verdict = TrendOK
			}
		default:
			// Worse than best beyond tolerance: regression only when
			// sustained over the trailing Sustain points.
			n := opt.sustain()
			if n > len(pts) {
				n = len(pts)
			}
			sustained := true
			for _, p := range pts[len(pts)-n:] {
				if badness(row.Direction, best, p.Value) <= tol {
					sustained = false
					break
				}
			}
			if sustained {
				row.Verdict = TrendRegression
			} else {
				row.Verdict = TrendWatch
			}
		}
		rows = append(rows, row)
	}
	rank := map[string]int{TrendRegression: 0, TrendWatch: 1, TrendImproved: 2, TrendOK: 3, TrendSingle: 4}
	sort.Slice(rows, func(i, j int) bool {
		if rank[rows[i].Verdict] != rank[rows[j].Verdict] {
			return rank[rows[i].Verdict] < rank[rows[j].Verdict]
		}
		return rows[i].Metric < rows[j].Metric
	})
	return rows
}

// Regressions filters rows down to the gate-failing ones.
func Regressions(rows []TrendRow) []TrendRow {
	var out []TrendRow
	for _, r := range rows {
		if r.Gates() {
			out = append(out, r)
		}
	}
	return out
}

// WriteTrendReport renders the rows as a text report. When full is
// false, "single" rows (metrics seen in only one source) are
// summarized by count instead of listed.
func WriteTrendReport(w io.Writer, sources []Source, rows []TrendRow, full bool) {
	fmt.Fprintf(w, "trend over %d sources:\n", len(sources))
	for i, s := range sources {
		fmt.Fprintf(w, "  [%d] %s (%d metrics)\n", i+1, s.Name, len(s.Metrics))
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Verdict]++
	}
	fmt.Fprintf(w, "metrics: %d tracked — %d regression, %d watch, %d improved, %d ok, %d single-source\n",
		len(rows), counts[TrendRegression], counts[TrendWatch], counts[TrendImproved],
		counts[TrendOK], counts[TrendSingle])
	fmt.Fprintf(w, "  %-11s %-4s %-52s %12s %12s %8s\n", "verdict", "dir", "metric", "best", "last", "Δvs best")
	for _, r := range rows {
		if r.Verdict == TrendSingle && !full {
			continue
		}
		if (r.Verdict == TrendOK) && !full {
			continue
		}
		fmt.Fprintf(w, "  %-11s %-4s %-52s %12.4g %12.4g %7.1f%%\n",
			r.Verdict, dirString(r.Direction), trimMetric(r.Metric), r.Best, r.Last, 100*r.RelVsBest)
	}
	if !full {
		fmt.Fprintf(w, "  (%d ok and %d single-source rows hidden; -trend-full lists them)\n",
			counts[TrendOK], counts[TrendSingle])
	}
}

func dirString(d int) string {
	switch d {
	case +1:
		return "↑"
	case -1:
		return "↓"
	}
	return "·"
}

func trimMetric(m string) string {
	if len(m) > 52 {
		return "…" + m[len(m)-51:]
	}
	return m
}
