package runledger

import (
	"encoding/json"
	"net/http"
)

// TrendHandler serves the cross-run trend analysis as JSON at
// /trends.json: the ledger at path is re-read per request (it is
// append-only, so a held run picks up rows recorded after it
// started), prepended with any fixed baseline sources (e.g. the
// checked-in BENCH_PR*.json trajectory loaded at startup).
func TrendHandler(path string, baseline []Source, opt TrendOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sources := append([]Source{}, baseline...)
		entries, err := Read(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, e := range entries {
			sources = append(sources, SourceFromEntry(e))
		}
		rows := Trend(sources, opt)
		if rows == nil {
			rows = []TrendRow{}
		}
		names := make([]string, 0, len(sources))
		for _, s := range sources {
			names = append(names, s.Name)
		}
		if names == nil {
			names = []string{}
		}
		doc := struct {
			Ledger  string     `json:"ledger"`
			Sources []string   `json:"sources"`
			Rows    []TrendRow `json:"rows"`
		}{Ledger: path, Sources: names, Rows: rows}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}
