// Package runledger persists one JSONL record per benchmark/scaling/
// chaos run — matrix fingerprint, format, kernel, workers, git rev,
// host info and a metrics snapshot — and analyzes the accumulated
// trajectory for cross-run trends. It is the persistence substrate
// the format-selection advisor's tuning database will sit on: the
// ledger answers "which phase got slower, and when?" where
// regress.sh's pairwise diff can only compare two adjacent artifacts.
package runledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pjds/internal/telemetry"
)

// Schema identifies the ledger line format. Readers skip lines whose
// schema they do not recognize, so the format can evolve in place.
const Schema = "pjds-ledger/v1"

// DefaultPath is where tools append when -ledger is given without a
// path of its own.
const DefaultPath = ".spmv/ledger.jsonl"

// Host describes the machine a run executed on.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	Hostname  string `json:"hostname,omitempty"`
	GoVersion string `json:"go_version"`
}

// Entry is one run record. Metrics holds per-family sums from the
// telemetry registry (plus any tool-reported scalars); keys are
// metric names, optionally suffixed _sum/_count for histograms.
type Entry struct {
	Schema      string             `json:"schema"`
	Time        string             `json:"time"` // RFC3339
	Tool        string             `json:"tool"`
	Matrix      string             `json:"matrix,omitempty"`
	Fingerprint string             `json:"fingerprint,omitempty"`
	Format      string             `json:"format,omitempty"`
	Kernel      string             `json:"kernel,omitempty"`
	Workers     int                `json:"workers,omitempty"`
	Ranks       int                `json:"ranks,omitempty"`
	Scale       float64            `json:"scale,omitempty"`
	GitRev      string             `json:"git_rev"`
	Host        Host               `json:"host"`
	Metrics     map[string]float64 `json:"metrics"`
}

// Append writes e as one JSONL line at path, creating the parent
// directory as needed. Missing bookkeeping fields (Schema, Time,
// GitRev, Host) are filled in. The write is a single O_APPEND write
// of one line, so concurrent appenders interleave whole records.
func Append(path string, e Entry) error {
	if e.Schema == "" {
		e.Schema = Schema
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if e.GitRev == "" {
		e.GitRev = GitRev()
	}
	if e.Host == (Host{}) {
		e.Host = HostInfo()
	}
	if e.Metrics == nil {
		e.Metrics = map[string]float64{}
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runledger: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("runledger: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runledger: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("runledger: %w", werr)
	}
	return nil
}

// Read loads all recognizable entries from a ledger file. Malformed
// or foreign-schema lines are skipped, not fatal — an append-only log
// shared across tool versions must tolerate what it doesn't know.
// A missing file reads as an empty ledger.
func Read(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runledger: %w", err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			continue
		}
		if e.Schema != Schema {
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("runledger: %w", err)
	}
	return out, nil
}

// GitRev returns the abbreviated HEAD revision (with a "-dirty"
// suffix when the tree has modifications), or "unknown" outside a
// git checkout.
func GitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if rev == "" {
		return "unknown"
	}
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(status))) > 0 {
		rev += "-dirty"
	}
	return rev
}

// HostInfo samples the current machine.
func HostInfo() Host {
	h := Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	if name, err := os.Hostname(); err == nil {
		h.Hostname = name
	}
	return h
}

// Fingerprint derives a stable identity for a matrix instance from
// its name and dimensions, so runs of the same matrix at the same
// scale line up across ledger entries even when generated on the fly.
func Fingerprint(name string, rows, cols, nnz int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", name, rows, cols, nnz)
	return fmt.Sprintf("%016x", h.Sum64())
}

// MetricsFromRegistry condenses a registry snapshot to per-family
// sums: counter and gauge series sum across label sets under the
// family name; histograms contribute <name>_sum and <name>_count.
// Sums (not per-label series) keep ledger lines small and make the
// trend keyspace stable as label cardinality changes between runs.
func MetricsFromRegistry(r *telemetry.Registry) map[string]float64 {
	return MetricsFromSnapshot(r.Snapshot())
}

// MetricsFromSnapshot is MetricsFromRegistry over an already-taken
// snapshot (e.g. one read back from a -metrics-out artifact).
func MetricsFromSnapshot(snap []telemetry.Series) map[string]float64 {
	out := map[string]float64{}
	for _, s := range snap {
		switch s.Type {
		case "histogram":
			out[s.Name+"_sum"] += s.Sum
			out[s.Name+"_count"] += float64(s.Count)
		default:
			out[s.Name] += s.Value
		}
	}
	return out
}
