package runledger

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pjds/internal/telemetry"
)

func TestAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ledger.jsonl")
	for i, gf := range []float64{10, 12} {
		err := Append(path, Entry{
			Tool:    "spmvbench",
			Matrix:  "HMEp",
			Kernel:  "blocked",
			Workers: i + 1,
			Metrics: map[string]float64{"host_gflops": gf},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	entries, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2", len(entries))
	}
	e := entries[0]
	if e.Schema != Schema || e.Tool != "spmvbench" || e.Time == "" || e.GitRev == "" {
		t.Fatalf("entry not filled in: %+v", e)
	}
	if e.Host.OS == "" || e.Host.CPUs == 0 || e.Host.GoVersion == "" {
		t.Fatalf("host not filled in: %+v", e.Host)
	}
	if entries[1].Metrics["host_gflops"] != 12 {
		t.Fatalf("metrics = %v", entries[1].Metrics)
	}
}

func TestReadTolerant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	lines := []string{
		`not json at all`,
		`{"schema":"other/v9","tool":"x"}`,
		`{"schema":"` + Schema + `","tool":"keeper","metrics":{"a":1}}`,
		``,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Tool != "keeper" {
		t.Fatalf("entries = %+v", entries)
	}
	// Missing file: empty ledger, not an error.
	if entries, err := Read(filepath.Join(t.TempDir(), "nope.jsonl")); err != nil || entries != nil {
		t.Fatalf("missing file: entries=%v err=%v", entries, err)
	}
}

// TestReadTruncatedTrailingLine: a crash mid-Append leaves a partial
// JSON object with no newline at the tail. The tolerant reader must
// return every complete entry and nil error — a half-written last
// line must never poison the whole history.
func TestReadTruncatedTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	for _, gf := range []float64{10, 12} {
		if err := Append(path, Entry{Tool: "spmvd", Metrics: map[string]float64{"gflops": gf}}); err != nil {
			t.Fatal(err)
		}
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last line mid-object (drop its closing half and the
	// trailing newline), exactly what an interrupted write leaves.
	cut := bytes.TrimRight(whole, "\n")
	cut = cut[:len(cut)-len(cut)/4]
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}

	entries, err := Read(path)
	if err != nil {
		t.Fatalf("Read on truncated ledger: %v", err)
	}
	if len(entries) != 1 || entries[0].Metrics["gflops"] != 10 {
		t.Fatalf("entries = %+v, want just the first complete entry", entries)
	}

	// The trend pipeline over the surviving entries is unaffected.
	rows := Trend([]Source{SourceFromEntry(entries[0])}, TrendOptions{})
	if len(rows) == 0 {
		t.Fatal("trend over surviving entries produced no rows")
	}

	// Corrupt binary garbage on the tail (torn sector, not just a cut
	// JSON prefix) is equally non-fatal.
	garbage := append(append([]byte{}, whole...), []byte("\x00\xff{\"schema\":\x7f garbled")...)
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err = Read(path)
	if err != nil {
		t.Fatalf("Read on garbage tail: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries surviving garbage tail, want 2", len(entries))
	}
}

func TestFingerprintStable(t *testing.T) {
	a := Fingerprint("HMEp", 100, 100, 1000)
	b := Fingerprint("HMEp", 100, 100, 1000)
	c := Fingerprint("HMEp", 100, 100, 1001)
	if a != b {
		t.Fatalf("fingerprint unstable: %s vs %s", a, b)
	}
	if a == c {
		t.Fatalf("fingerprint collision across nnz: %s", a)
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint %q not 16 hex chars", a)
	}
}

func TestMetricsFromRegistry(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("reqs_total", telemetry.L("rank", "0")).Add(3)
	r.Counter("reqs_total", telemetry.L("rank", "1")).Add(4)
	r.Gauge("depth").Set(5)
	r.Histogram("lat_seconds", []float64{1, 2}).Observe(1.5)
	m := MetricsFromRegistry(r)
	if m["reqs_total"] != 7 {
		t.Fatalf("reqs_total = %v, want family sum 7", m["reqs_total"])
	}
	if m["depth"] != 5 {
		t.Fatalf("depth = %v", m["depth"])
	}
	if m["lat_seconds_sum"] != 1.5 || m["lat_seconds_count"] != 1 {
		t.Fatalf("histogram rollup = %v", m)
	}
}

func trendOf(t *testing.T, vals []float64, metric string, opt TrendOptions) TrendRow {
	t.Helper()
	var sources []Source
	for i, v := range vals {
		sources = append(sources, Source{
			Name:    "src" + string(rune('A'+i)),
			Metrics: map[string]float64{metric: v},
		})
	}
	rows := Trend(sources, opt)
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	return rows[0]
}

func TestTrendVerdicts(t *testing.T) {
	opt := TrendOptions{Tolerance: 0.05, Sustain: 2}
	cases := []struct {
		name    string
		metric  string
		vals    []float64
		verdict string
	}{
		{"single source", "gflops", []float64{10}, TrendSingle},
		{"steady", "gflops", []float64{10, 10.1, 9.9}, TrendOK},
		{"new best", "gflops", []float64{10, 10.2, 12}, TrendImproved},
		{"one bad run", "gflops", []float64{10, 10, 8}, TrendWatch},
		{"sustained loss", "gflops", []float64{10, 10, 8, 8.1}, TrendRegression},
		{"lower better sustained", "solve_seconds", []float64{1.0, 1.0, 1.3, 1.25}, TrendRegression},
		{"lower better improved", "solve_seconds", []float64{1.0, 0.8}, TrendImproved},
		{"unknown dir drift is watch not gate", "mystery_quantity", []float64{10, 10, 20}, TrendWatch},
		{"unknown dir steady", "mystery_quantity", []float64{10, 10}, TrendOK},
	}
	for _, tc := range cases {
		row := trendOf(t, tc.vals, tc.metric, opt)
		if row.Verdict != tc.verdict {
			t.Errorf("%s: verdict %s, want %s (row %+v)", tc.name, row.Verdict, tc.verdict, row)
		}
		if row.Gates() != (tc.verdict == TrendRegression) {
			t.Errorf("%s: Gates() = %v for verdict %s", tc.name, row.Gates(), row.Verdict)
		}
	}
}

func TestTrendRecoveryIsNotSustained(t *testing.T) {
	// Dipped then recovered: the trailing point is back inside the
	// band, so the row must not gate.
	row := trendOf(t, []float64{10, 8, 10}, "gflops", TrendOptions{})
	if row.Verdict != TrendOK {
		t.Fatalf("verdict %s, want ok after recovery", row.Verdict)
	}
}

func TestSourceFromJSON(t *testing.T) {
	doc := []byte(`{"entries":[{"gflops":12.5,"name":"HMEp"}],"total_seconds":3.5}`)
	src, err := SourceFromJSON("BENCH_PR1.json", doc)
	if err != nil {
		t.Fatal(err)
	}
	if src.Metrics["entries[0].gflops"] != 12.5 {
		t.Fatalf("metrics = %v", src.Metrics)
	}
	if src.Metrics["total_seconds"] != 3.5 {
		t.Fatalf("metrics = %v", src.Metrics)
	}
}

func TestWriteTrendReport(t *testing.T) {
	sources := []Source{
		{Name: "a", Metrics: map[string]float64{"gflops": 10, "only_here": 1}},
		{Name: "b", Metrics: map[string]float64{"gflops": 8}},
		{Name: "c", Metrics: map[string]float64{"gflops": 8}},
	}
	rows := Trend(sources, TrendOptions{})
	var buf bytes.Buffer
	WriteTrendReport(&buf, sources, rows, false)
	out := buf.String()
	for _, want := range []string{"trend over 3 sources", "regression", "gflops", "1 single-source"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "only_here") {
		t.Fatalf("single-source row listed without -trend-full:\n%s", out)
	}
	if len(Regressions(rows)) != 1 {
		t.Fatalf("Regressions = %+v", Regressions(rows))
	}
}

func TestTrendHandler(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := Append(path, Entry{Tool: "spmvbench", Metrics: map[string]float64{"host_gflops": 11}}); err != nil {
		t.Fatal(err)
	}
	baseline := []Source{{Name: "BENCH_PR7.json", Metrics: map[string]float64{"host_gflops": 10}}}
	h := TrendHandler(path, baseline, TrendOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trends.json", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d", rec.Code)
	}
	var doc struct {
		Ledger  string     `json:"ledger"`
		Sources []string   `json:"sources"`
		Rows    []TrendRow `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Sources) != 2 || len(doc.Rows) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Rows[0].Metric != "host_gflops" || doc.Rows[0].Verdict != TrendImproved {
		t.Fatalf("row = %+v", doc.Rows[0])
	}
}
