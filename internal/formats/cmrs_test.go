package formats

import (
	"math/rand"
	"reflect"
	"testing"

	"pjds/internal/matrix"
)

// TestCMRSBitIdenticalToCRS: CMRS accumulates each row in CSR element
// order with a single per-row accumulator, which is exactly the naive
// reference summation — results must be bit-identical, not merely
// within tolerance.
func TestCMRSBitIdenticalToCRS(t *testing.T) {
	for _, height := range []int{1, 3, 16, 64} {
		m := randomCSR(257, 190, 0.05, int64(height))
		c, err := NewCMRS(m, height)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 190)
		rng := rand.New(rand.NewSource(99))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, 257)
		if err := m.MulVec(ref, x); err != nil {
			t.Fatal(err)
		}
		y := make([]float64, 257)
		if err := c.MulVec(y, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if y[i] != ref[i] {
				t.Fatalf("height=%d: y[%d] = %x, want %x (bit mismatch)", height, i, y[i], ref[i])
			}
		}
	}
}

func TestCMRSGeometry(t *testing.T) {
	m := randomCSR(100, 80, 0.05, 21)
	c, err := NewCMRS(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Height != 16 || c.NStrips != (100+15)/16 {
		t.Errorf("Height=%d NStrips=%d", c.Height, c.NStrips)
	}
	if int(c.StripPtr[c.NStrips]) != m.Nnz() {
		t.Errorf("StripPtr end %d, want nnz %d", c.StripPtr[c.NStrips], m.Nnz())
	}
	// Every element's absolute row must land inside its strip and the
	// stream must be the CSR stream verbatim (no padding, no reorder).
	e := 0
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k := range vals {
			strip := 0
			for int64(e) >= c.StripPtr[strip+1] {
				strip++
			}
			if strip*16+int(c.RowInStrip[e]) != i {
				t.Fatalf("element %d: strip %d offset %d, want row %d", e, strip, c.RowInStrip[e], i)
			}
			if c.Val[e] != vals[k] || int(c.ColIdx[e]) != int(cols[k]) {
				t.Fatalf("element %d not the CSR stream", e)
			}
			e++
		}
	}
	if def, err := NewCMRS(m, 0); err != nil || def.Height != DefaultStripHeight {
		t.Errorf("default height: %v %v", def, err)
	}
}

func TestCMRSValidation(t *testing.T) {
	m := randomCSR(40, 40, 0.1, 5)
	if _, err := NewCMRS(m, -1); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := NewCMRS(m, MaxStripHeight+1); err == nil {
		t.Error("oversized height accepted")
	}
	c, err := NewCMRS(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MulVec(make([]float64, 40), make([]float64, 3)); err == nil {
		t.Error("short x accepted")
	}
	if err := c.MulVec(make([]float64, 3), make([]float64, 40)); err == nil {
		t.Error("short y accepted")
	}
}

// TestCMRSEmptyRowsAndTail: empty rows must produce exact zeros and a
// final partial strip must not read out of bounds.
func TestCMRSEmptyRowsAndTail(t *testing.T) {
	coo := matrix.NewCOO[float64](37, 20)
	for i := 0; i < 37; i += 3 { // rows 1,2 mod 3 stay empty
		coo.Add(i, i%20, float64(i)+1)
	}
	m := coo.ToCSR()
	c, err := NewCMRS(m, 8) // 37 rows → 5 strips, last covers 5 rows
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 20)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 37)
	if err := c.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		want := 0.0
		if i%3 == 0 {
			want = float64(i) + 1
		}
		if y[i] != want {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
}

// TestCMRSWorkerDeterminism: the parallel strip fill must be
// bit-identical to the sequential build at any worker count.
func TestCMRSWorkerDeterminism(t *testing.T) {
	m := randomCSR(500, 300, 0.03, 17)
	base, err := NewCMRSWith(m, 16, matrix.ConvertOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for w := 2; w <= 8; w++ {
		par, err := NewCMRSWith(m, 16, matrix.ConvertOptions{Workers: w, ForceParallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, par) {
			t.Fatalf("workers=%d: CMRS differs from sequential build", w)
		}
	}
}
