package formats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pjds/internal/matrix"
)

func randomCSR(rows, cols int, density float64, seed int64) *matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

// allFormats builds every format in the repository for m.
func allFormats(t *testing.T, m *matrix.CSR[float64]) []Format[float64] {
	t.Helper()
	pjds, err := NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	jds, err := NewJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	sell, err := NewSlicedELL(m, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	sellSorted, err := NewSlicedELL(m, 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	cmrs, err := NewCMRS(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return []Format[float64]{
		NewCRS(m),
		NewELLPACK(m),
		NewELLPACKR(m),
		pjds,
		jds,
		sell,
		sellSorted,
		cmrs,
	}
}

func TestAllFormatsMatchReference(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		m := randomCSR(150, 130, 0.06, seed)
		x := make([]float64, 130)
		rng := rand.New(rand.NewSource(seed + 50))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, 150)
		if err := m.MulVec(ref, x); err != nil {
			t.Fatal(err)
		}
		for _, f := range allFormats(t, m) {
			y := make([]float64, 150)
			if err := f.MulVec(y, x); err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
			for i := range y {
				if math.Abs(y[i]-ref[i]) > 1e-11 {
					t.Fatalf("%s seed %d: y[%d] = %g, want %g", f.Name(), seed, i, y[i], ref[i])
				}
			}
			if f.Rows() != 150 || f.Cols() != 130 || f.NonZeros() != m.Nnz() {
				t.Errorf("%s: metadata mismatch", f.Name())
			}
			if f.FootprintBytes() <= 0 {
				t.Errorf("%s: non-positive footprint", f.Name())
			}
		}
	}
}

func TestELLPACKStorageGeometry(t *testing.T) {
	// 40 rows → padded to 64 (two warps); max row length from data.
	coo := matrix.NewCOO[float64](40, 100)
	for i := 0; i < 40; i++ {
		for j := 0; j <= i%7; j++ {
			coo.Add(i, (i*13+j)%100, 1)
		}
	}
	m := coo.ToCSR()
	e := NewELLPACK(m)
	if e.NPad != 64 {
		t.Errorf("NPad = %d, want 64", e.NPad)
	}
	if e.MaxRowLen != 7 {
		t.Errorf("MaxRowLen = %d, want 7", e.MaxRowLen)
	}
	if e.StoredElems() != 64*7 {
		t.Errorf("stored = %d, want %d", e.StoredElems(), 64*7)
	}
	// ELLPACK-R has identical storage plus rowLen.
	r := NewELLPACKR(m)
	if r.StoredElems() != e.StoredElems() {
		t.Error("ELLPACK-R stored elems differ from ELLPACK")
	}
	if r.FootprintBytes() != e.FootprintBytes()+int64(e.NPad)*4 {
		t.Error("ELLPACK-R footprint should add rowLen array")
	}
	if r.Name() != "ELLPACK-R" || e.Name() != "ELLPACK" {
		t.Error("names")
	}
}

func TestELLPACKPaddingIsHarmless(t *testing.T) {
	// Padding slots multiply 0 by an in-range RHS element; results
	// must be exact even with NaN-free but extreme RHS values.
	coo := matrix.NewCOO[float64](3, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 1)
	coo.Add(1, 2, 1)
	coo.Add(2, 2, 2)
	m := coo.ToCSR()
	e := NewELLPACK(m)
	x := []float64{1e300, -1e300, 0.5}
	y := make([]float64, 3)
	if err := e.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{1e300, 1e300 - 1e300 + 0.5, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestDataReductionExtremeCase(t *testing.T) {
	// One full row, singleton others (§II-A): reduction approaches
	// 1 − (br+1)/N for large N.
	const n = 512
	coo := matrix.NewCOO[float64](n, n)
	for j := 0; j < n; j++ {
		coo.Add(0, j, 1)
	}
	for i := 1; i < n; i++ {
		coo.Add(i, i, 1)
	}
	m := coo.ToCSR()
	ell := NewELLPACK(m)
	p, err := NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	red := DataReduction[float64](ell, p)
	want := 1 - float64((32+1)*n-32)/float64(n*n)
	if math.Abs(red-want) > 1e-12 {
		t.Errorf("reduction = %.6f, want %.6f", red, want)
	}
	if red < 0.9 {
		t.Errorf("expected >90%% reduction in the extreme case, got %.2f", red)
	}
}

func TestDataReductionZeroDenominator(t *testing.T) {
	empty := matrix.NewCOO[float64](0, 0).ToCSR()
	e := NewELLPACK(empty)
	if DataReduction[float64](e, e) != 0 {
		t.Error("empty reduction should be 0")
	}
}

func TestSlicedELLGeometry(t *testing.T) {
	// Rows with descending lengths 8,8,...,1 in groups; slice height 4.
	lens := []int{8, 1, 8, 1, 2, 2, 2, 2, 5}
	coo := matrix.NewCOO[float64](len(lens), 16)
	for i, l := range lens {
		for j := 0; j < l; j++ {
			coo.Add(i, j, float64(i+1))
		}
	}
	m := coo.ToCSR()

	// Unsorted, C=4: slice lens are max(8,1,8,1)=8, max(2,2,2,2)=2,
	// max(5)=5 (padded to 12 rows → slice 2 has rows 8..11, lens 5,0,0,0).
	s, err := NewSlicedELL(m, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NPad != 12 {
		t.Errorf("NPad = %d", s.NPad)
	}
	wantSliceLen := []int32{8, 2, 5}
	for i, w := range wantSliceLen {
		if s.SliceLen[i] != w {
			t.Errorf("slice %d len = %d, want %d", i, s.SliceLen[i], w)
		}
	}
	if s.StoredElems() != int64(4*8+4*2+4*5) {
		t.Errorf("stored = %d", s.StoredElems())
	}
	if s.Name() != "sliced-ELL" {
		t.Errorf("name = %q", s.Name())
	}

	// Sorted globally the padding shrinks: lengths desc 8,8,5,2|2,2,2,1|1
	// → slice lens 8,2,1.
	g, err := NewSlicedELL(m, 4, len(lens))
	if err != nil {
		t.Fatal(err)
	}
	if g.StoredElems() >= s.StoredElems() {
		t.Errorf("global sort did not reduce storage: %d vs %d", g.StoredElems(), s.StoredElems())
	}
	if g.Name() != "sliced-ELL-sorted" {
		t.Errorf("name = %q", g.Name())
	}
	if !g.RowPerm().Valid() {
		t.Error("invalid permutation")
	}
}

func TestSlicedELLSortWindowClamping(t *testing.T) {
	m := randomCSR(50, 50, 0.1, 3)
	// sigma larger than N clamps; sigma not a multiple of C rounds up.
	s, err := NewSlicedELL(m, 8, 999)
	if err != nil {
		t.Fatal(err)
	}
	if s.SortWindow != 50 {
		t.Errorf("sigma = %d, want 50 (clamped)", s.SortWindow)
	}
	s2, err := NewSlicedELL(m, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if s2.SortWindow != 24 {
		t.Errorf("sigma = %d, want 24 (rounded to multiple of C)", s2.SortWindow)
	}
	if _, err := NewSlicedELL(m, 0, 1); err == nil {
		t.Error("C=0 accepted")
	}
}

// Property: sliced-ELL with any (C, σ) matches CRS.
func TestSlicedELLPropertyMatchesCRS(t *testing.T) {
	f := func(seed int64) bool {
		s := seed & 0x3fff
		rng := rand.New(rand.NewSource(s))
		rows := 1 + rng.Intn(70)
		m := randomCSR(rows, rows, 0.12, s+2)
		c := 1 + rng.Intn(16)
		sigma := rng.Intn(rows + 10)
		se, err := NewSlicedELL(m, c, sigma)
		if err != nil {
			return false
		}
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, rows)
		ref := make([]float64, rows)
		if se.MulVec(y, x) != nil || m.MulVec(ref, x) != nil {
			return false
		}
		for i := range y {
			if math.Abs(y[i]-ref[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: storage ordering ELLPACK ≥ sliced-ELL(unsorted) ≥
// sliced-ELL(sorted, σ=N) ≥ JDS = nnz, with pJDS between sorted-sliced
// (same geometry at C=br) and JDS.
func TestStorageOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := seed & 0xfff
		m := randomCSR(100, 100, 0.08, s)
		ell := NewELLPACK(m)
		sell, err1 := NewSlicedELL(m, 32, 1)
		sorted, err2 := NewSlicedELL(m, 32, 100)
		pjds, err3 := NewPJDS(m)
		jds, err4 := NewJDS(m)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if ell.StoredElems() < sell.StoredElems() {
			return false
		}
		if sell.StoredElems() < sorted.StoredElems() {
			return false
		}
		if sorted.StoredElems() < jds.StoredElems() {
			return false
		}
		if pjds.StoredElems() < jds.StoredElems() {
			return false
		}
		return jds.StoredElems() == int64(m.Nnz())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCRSAdapter(t *testing.T) {
	m := randomCSR(10, 12, 0.3, 13)
	c := NewCRS(m)
	if c.Name() != "CRS" || c.StoredElems() != int64(m.Nnz()) {
		t.Error("CRS adapter basics")
	}
	want := int64(m.Nnz())*12 + int64(len(m.RowPtr))*8
	if c.FootprintBytes() != want {
		t.Errorf("CRS footprint = %d, want %d", c.FootprintBytes(), want)
	}
}

func TestFormatShapeErrors(t *testing.T) {
	m := randomCSR(10, 10, 0.3, 17)
	for _, f := range allFormats(t, m) {
		if err := f.MulVec(make([]float64, 10), make([]float64, 9)); err == nil {
			t.Errorf("%s: wrong x size accepted", f.Name())
		}
		if err := f.MulVec(make([]float64, 9), make([]float64, 10)); err == nil {
			t.Errorf("%s: wrong y size accepted", f.Name())
		}
	}
}

func TestSinglePrecisionFormats(t *testing.T) {
	md := randomCSR(64, 64, 0.1, 19)
	m := matrix.Convert[float32](md)
	x := make([]float32, 64)
	for i := range x {
		x[i] = float32(i%5) - 2
	}
	ref := make([]float32, 64)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	p, err := NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format[float32]{NewELLPACK(m), NewELLPACKR(m), p} {
		y := make([]float32, 64)
		if err := f.MulVec(y, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(float64(y[i]-ref[i])) > 1e-3 {
				t.Fatalf("%s SP mismatch at %d", f.Name(), i)
			}
		}
		// SP footprint must be smaller than DP footprint.
		var fd Format[float64]
		switch f.Name() {
		case "ELLPACK":
			fd = NewELLPACK(md)
		case "ELLPACK-R":
			fd = NewELLPACKR(md)
		default:
			pd, err := NewPJDS(md)
			if err != nil {
				t.Fatal(err)
			}
			fd = pd
		}
		if f.FootprintBytes() >= fd.FootprintBytes() {
			t.Errorf("%s: SP footprint %d not below DP %d", f.Name(), f.FootprintBytes(), fd.FootprintBytes())
		}
	}
}

// TestSinglePrecisionNewFormats exercises the float32 paths of the
// formats added beyond the paper's core set.
func TestSinglePrecisionNewFormats(t *testing.T) {
	md := randomCSR(80, 80, 0.1, 23)
	m := matrix.Convert[float32](md)
	x := make([]float32, 80)
	for i := range x {
		x[i] = float32(i%9) - 4
	}
	ref := make([]float32, 80)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	ert, err := NewELLRT(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	bell, err := NewBELLPACK(m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sell, err := NewSlicedELL(m, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format[float32]{ert, bell, sell} {
		y := make([]float32, 80)
		if err := f.MulVec(y, x); err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		for i := range y {
			if math.Abs(float64(y[i]-ref[i])) > 1e-3 {
				t.Fatalf("%s: SP mismatch at %d", f.Name(), i)
			}
		}
	}
}
