package formats

import (
	"math"
	"reflect"
	"testing"

	"pjds/internal/matrix"
)

func TestSELLName(t *testing.T) {
	cases := []struct {
		c, sigma, n int
		want        string
	}{
		{32, 1000, 1000, "SELL-32-∞"},
		{32, 2000, 1000, "SELL-32-∞"},
		{8, 256, 1000, "SELL-8-256"},
		{4, 1, 1000, "SELL-4-1"},
		{4, 0, 1000, "SELL-4-1"},
	}
	for _, tc := range cases {
		if got := SELLName(tc.c, tc.sigma, tc.n); got != tc.want {
			t.Errorf("SELLName(%d, %d, %d) = %q, want %q", tc.c, tc.sigma, tc.n, got, tc.want)
		}
	}
}

// TestSELLPJDSEquivalence checks the SELL-32-∞ preset against pJDS:
// same row permutation, same stored-element count — the format
// identity pJDS = SELL-32-∞ from arXiv:1307.6209 (§II of DESIGN.md's
// tuner section).
func TestSELLPJDSEquivalence(t *testing.T) {
	m := randomCSR(300, 300, 0.05, 7)
	s, err := NewSELLPJDSEquivalent(m, matrix.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.SELLName() != "SELL-32-∞" {
		t.Errorf("SELLName = %q", s.SELLName())
	}
	if !reflect.DeepEqual(s.Perm, p.Perm) {
		t.Error("SELL-32-∞ permutation differs from pJDS global sort")
	}
	if s.StoredElems() != p.StoredElems() {
		t.Errorf("stored elems: SELL-32-∞ %d, pJDS %d", s.StoredElems(), p.StoredElems())
	}
}

// TestSELLC1MatchesUnsortedSliced pins the SELL-C-1 preset to the
// original unsorted sliced-ELLPACK.
func TestSELLC1MatchesUnsortedSliced(t *testing.T) {
	m := randomCSR(200, 180, 0.05, 3)
	a, err := NewSELLC1(m, 8, matrix.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSlicedELL(m, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("SELL-C-1 preset differs from NewSlicedELL(m, c, 1)")
	}
	if a.SELLName() != "SELL-8-1" {
		t.Errorf("SELLName = %q", a.SELLName())
	}
}

// TestZeroPaddingMonotoneInSigma: widening the sorting window can only
// shrink (never grow) the padding β, and padding-free formats report 0.
func TestZeroPaddingMonotoneInSigma(t *testing.T) {
	m := randomCSR(512, 512, 0.03, 11)
	prev := math.Inf(1)
	for _, sigma := range []int{1, 32, 128, 512} {
		s, err := NewSELLCSigma(m, 16, sigma, matrix.ConvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		beta := s.ZeroPadding()
		if beta < 0 {
			t.Fatalf("sigma=%d: beta %g < 0", sigma, beta)
		}
		if beta > prev+1e-12 {
			t.Errorf("sigma=%d: beta %g grew from %g", sigma, beta, prev)
		}
		occ := ChunkOccupancy[float64](s)
		if math.Abs(occ*(1+beta)-1) > 1e-9 {
			t.Errorf("sigma=%d: occupancy %g does not invert 1+beta %g", sigma, occ, 1+beta)
		}
		prev = beta
	}
	if got := ZeroPadding[float64](NewCRS(m)); got != 0 {
		t.Errorf("CRS beta = %g, want 0", got)
	}
	c, err := NewCMRS(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StoredElems(); got != int64(m.Nnz()) {
		t.Errorf("CMRS stored %d, want nnz %d", got, m.Nnz())
	}
	if got := ZeroPadding[float64](c); got != 0 {
		t.Errorf("CMRS beta = %g, want 0", got)
	}
}

// TestEstimateBetaExact: the length-array estimate must equal the β of
// the layout it predicts, for every clamping corner (σ unaligned to C,
// σ ≥ n, σ = 1).
func TestEstimateBetaExact(t *testing.T) {
	m := randomCSR(317, 290, 0.04, 23)
	lens := make([]int, m.NRows)
	for i := range lens {
		lens[i] = m.RowLen(i)
	}
	for _, tc := range []struct{ c, sigma int }{
		{4, 1}, {8, 100}, {16, 250}, {32, 317}, {32, 1000}, {6, 50},
	} {
		s, err := NewSlicedELLWith(m, tc.c, tc.sigma, matrix.ConvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := EstimateBeta(lens, tc.c, tc.sigma)
		if math.Abs(got-s.ZeroPadding()) > 1e-12 {
			t.Errorf("C=%d σ=%d: estimate %g, layout %g", tc.c, tc.sigma, got, s.ZeroPadding())
		}
	}
}
