package formats

import (
	"fmt"

	"pjds/internal/matrix"
)

// CMRS is the Compressed Multirow Storage format of Koza et al.
// (arXiv:1203.2946): rows are grouped into strips of Height
// consecutive rows, and the strip's non-zeros are stored in plain CSR
// element order — no padding at all. Each element carries its row's
// offset within the strip (RowInStrip), so a warp can process a
// strip's elements in perfectly coalesced order and scatter partial
// sums to at most Height distinct rows. CMRS trades pJDS/SELL's
// zero-padding for one extra byte of metadata per element and an
// in-warp reduction, which makes it the natural third contender for
// the format-selection engine: it wins when the row-length
// distribution is so irregular that any chunked-padded layout drowns
// in β.
type CMRS[T matrix.Float] struct {
	N     int
	NCols int
	NnzV  int
	// Height is the strip height (rows per strip), at most MaxStripHeight.
	Height  int
	NStrips int

	// Val and ColIdx hold the non-zeros in CSR element order — the
	// val/colidx streams are byte-identical to CRS, which is what makes
	// the warp loads perfectly coalesced.
	Val    []T
	ColIdx []int32
	// RowInStrip[e] is the row offset of element e within its strip.
	RowInStrip []uint8
	// StripPtr[s] is the element index where strip s begins
	// (NStrips+1 entries); strip s covers rows [s·Height, (s+1)·Height).
	StripPtr []int64
}

// MaxStripHeight bounds Height so RowInStrip fits one byte per
// element (the paper packs these bits into the column index; a
// separate byte array models the same traffic).
const MaxStripHeight = 256

// DefaultStripHeight is the strip height used when the caller does
// not choose one: tall enough to average short rows into full warp
// loads, short enough to keep the per-strip scatter in registers.
const DefaultStripHeight = 16

// NewCMRS builds the CMRS layout with the given strip height
// (0 selects DefaultStripHeight).
func NewCMRS[T matrix.Float](m *matrix.CSR[T], height int) (*CMRS[T], error) {
	return NewCMRSWith(m, height, matrix.ConvertOptions{})
}

// NewCMRSWith is NewCMRS with explicit conversion options. Strips are
// filled in parallel — each strip's element range is fixed by the CSR
// row pointers alone, so every worker count builds the identical
// arrays.
func NewCMRSWith[T matrix.Float](m *matrix.CSR[T], height int, opt matrix.ConvertOptions) (*CMRS[T], error) {
	if height == 0 {
		height = DefaultStripHeight
	}
	if height < 1 || height > MaxStripHeight {
		return nil, fmt.Errorf("formats: CMRS strip height %d outside [1, %d]", height, MaxStripHeight)
	}
	done := opt.Phase("cmrs-fill")
	defer done()
	n := m.NRows
	nStrips := (n + height - 1) / height
	nnz := m.Nnz()
	c := &CMRS[T]{
		N: n, NCols: m.NCols, NnzV: nnz,
		Height: height, NStrips: nStrips,
		Val:        make([]T, nnz),
		ColIdx:     make([]int32, nnz),
		RowInStrip: make([]uint8, nnz),
		StripPtr:   make([]int64, nStrips+1),
	}
	for s := 0; s <= nStrips; s++ {
		row := s * height
		if row > n {
			row = n
		}
		c.StripPtr[s] = int64(m.RowPtr[row])
	}
	opt.Run(nStrips, func(w, lo, hi int) {
		for s := lo; s < hi; s++ {
			rlo := s * height
			rhi := rlo + height
			if rhi > n {
				rhi = n
			}
			at := c.StripPtr[s]
			for i := rlo; i < rhi; i++ {
				cols, vals := m.Row(i)
				r := uint8(i - rlo)
				for j := range cols {
					c.Val[at] = vals[j]
					c.ColIdx[at] = cols[j]
					c.RowInStrip[at] = r
					at++
				}
			}
		}
	})
	return c, nil
}

// Name implements Format.
func (c *CMRS[T]) Name() string { return "CMRS" }

// Rows implements Format.
func (c *CMRS[T]) Rows() int { return c.N }

// Cols implements Format.
func (c *CMRS[T]) Cols() int { return c.NCols }

// NonZeros implements Format.
func (c *CMRS[T]) NonZeros() int { return c.NnzV }

// StoredElems implements Format: CMRS stores exactly the non-zeros.
func (c *CMRS[T]) StoredElems() int64 { return int64(c.NnzV) }

// FootprintBytes implements Format: values, column indices, one
// row-in-strip byte per element, and the strip-pointer array.
func (c *CMRS[T]) FootprintBytes() int64 {
	return int64(c.NnzV)*int64(SizeofElem[T]()+4+1) + int64(len(c.StripPtr))*8
}

// MulVec implements Format with the sequential reference walk: strip
// by strip in element order, one accumulator per row. Elements of a
// row are consecutive in CSR order, so each row's sum accumulates in
// stored column order — bit-identical to the CRS reference.
func (c *CMRS[T]) MulVec(y, x []T) error {
	if len(x) != c.NCols || len(y) != c.N {
		return fmt.Errorf("formats: CMRS MulVec |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), c.N, c.NCols, matrix.ErrShape)
	}
	for i := range y[:c.N] {
		y[i] = 0
	}
	for s := 0; s < c.NStrips; s++ {
		base := s * c.Height
		for e := c.StripPtr[s]; e < c.StripPtr[s+1]; {
			r := base + int(c.RowInStrip[e])
			var sum T
			for ; e < c.StripPtr[s+1] && base+int(c.RowInStrip[e]) == r; e++ {
				sum += c.Val[e] * x[c.ColIdx[e]]
			}
			y[r] = sum
		}
	}
	return nil
}
