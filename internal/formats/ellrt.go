package formats

import (
	"fmt"

	"pjds/internal/matrix"
)

// ELLRT is the ELLR-T format of Vázquez et al. (named in §II-A as one
// of the tuned alternatives pJDS avoids): ELLPACK-R storage reorganized
// so that T threads cooperate on each row. Row entries are stored in
// groups of T — element j of row i lives at
//
//	(j/T)·NPad·T + i·T + (j%T)
//
// so the T lanes of one row and the rows of one warp all touch
// consecutive addresses (coalescing holds for any T). The matching
// kernel finishes a row in ceil(len/T) SIMT steps, which helps long
// rows and small matrices at the price of a per-row reduction and a
// matrix-dependent tuning parameter T — exactly the kind of parameter
// the paper's format avoids.
type ELLRT[T matrix.Float] struct {
	N     int
	NCols int
	NPad  int
	NnzV  int
	// ThreadsPerRow is the tuning parameter T.
	ThreadsPerRow int
	// MaxRowLen is the true maximum row length; MaxLenPadded rounds it
	// up to a multiple of ThreadsPerRow (the iteration count of the
	// cooperative kernel is MaxLenPadded/T).
	MaxRowLen    int
	MaxLenPadded int

	Val    []T
	ColIdx []int32
	RowLen []int32
}

// NewELLRT builds the ELLR-T representation with T threads per row.
// T must divide the warp size.
func NewELLRT[T matrix.Float](m *matrix.CSR[T], threads int) (*ELLRT[T], error) {
	return NewELLRTWith(m, threads, matrix.ConvertOptions{})
}

// NewELLRTWith is NewELLRT with explicit conversion options: the fill
// is parallel over rows (row i writes only its own group slots), so
// the result is bit-identical for every worker count.
func NewELLRTWith[T matrix.Float](m *matrix.CSR[T], threads int, opt matrix.ConvertOptions) (*ELLRT[T], error) {
	if threads < 1 || WarpSize%threads != 0 {
		return nil, fmt.Errorf("formats: ELLR-T with T=%d (must divide the warp size %d)", threads, WarpSize)
	}
	done := opt.Phase("ellrt-fill")
	defer done()
	n := m.NRows
	npad := ((n + WarpSize - 1) / WarpSize) * WarpSize
	maxLen := m.MaxRowLen()
	padded := ((maxLen + threads - 1) / threads) * threads
	e := &ELLRT[T]{
		N:             n,
		NCols:         m.NCols,
		NPad:          npad,
		NnzV:          m.Nnz(),
		ThreadsPerRow: threads,
		MaxRowLen:     maxLen,
		MaxLenPadded:  padded,
		Val:           make([]T, npad*padded),
		ColIdx:        make([]int32, npad*padded),
		RowLen:        make([]int32, npad),
	}
	opt.Run(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := m.Row(i)
			e.RowLen[i] = int32(len(cols))
			safe := int32(0)
			if len(cols) > 0 {
				safe = cols[0]
			}
			for j := 0; j < padded; j++ {
				at := e.index(i, j)
				if j < len(cols) {
					e.Val[at] = vals[j]
					e.ColIdx[at] = cols[j]
				} else {
					e.ColIdx[at] = safe
				}
			}
		}
	})
	return e, nil
}

// index returns the storage position of element j of row i.
func (e *ELLRT[T]) index(i, j int) int {
	t := e.ThreadsPerRow
	return (j/t)*e.NPad*t + i*t + j%t
}

// Name implements Format.
func (e *ELLRT[T]) Name() string { return fmt.Sprintf("ELLR-T(%d)", e.ThreadsPerRow) }

// Rows implements Format.
func (e *ELLRT[T]) Rows() int { return e.N }

// Cols implements Format.
func (e *ELLRT[T]) Cols() int { return e.NCols }

// NonZeros implements Format.
func (e *ELLRT[T]) NonZeros() int { return e.NnzV }

// StoredElems implements Format.
func (e *ELLRT[T]) StoredElems() int64 { return int64(e.NPad) * int64(e.MaxLenPadded) }

// FootprintBytes implements Format.
func (e *ELLRT[T]) FootprintBytes() int64 {
	return e.StoredElems()*int64(SizeofElem[T]()+4) + int64(len(e.RowLen))*4
}

// MulVec implements Format with the host rendering of the cooperative
// kernel (each row still sums ceil(len/T)·T slots; padding contributes
// zero).
func (e *ELLRT[T]) MulVec(y, x []T) error {
	if len(x) != e.NCols || len(y) != e.N {
		return fmt.Errorf("formats: ELLR-T MulVec |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	for i := 0; i < e.N; i++ {
		var sum T
		for j := 0; j < int(e.RowLen[i]); j++ {
			at := e.index(i, j)
			sum += e.Val[at] * x[e.ColIdx[at]]
		}
		y[i] = sum
	}
	return nil
}
