package formats

import (
	"reflect"
	"testing"

	"pjds/internal/matrix"
)

// TestFormatsWorkerDeterminism builds every format on the same matrix
// sequentially and with the forced-parallel path at several worker
// counts; the structures must be reflect.DeepEqual (bit-identical
// arrays) in every case.
func TestFormatsWorkerDeterminism(t *testing.T) {
	m := randomCSR(400, 250, 0.04, 13)
	seq := matrix.ConvertOptions{Workers: 1}
	for w := 2; w <= 8; w += 2 {
		par := matrix.ConvertOptions{Workers: w, ForceParallel: true}

		if base := NewELLPACKWith(m, seq); !reflect.DeepEqual(base, NewELLPACKWith(m, par)) {
			t.Fatalf("workers=%d: ELLPACK differs", w)
		}
		if base := NewELLPACKRWith(m, seq); !reflect.DeepEqual(base, NewELLPACKRWith(m, par)) {
			t.Fatalf("workers=%d: ELLPACK-R differs", w)
		}

		bb, err := NewBELLPACKWith(m, 4, 4, seq)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := NewBELLPACKWith(m, 4, 4, par)
		if err != nil || !reflect.DeepEqual(bb, bp) {
			t.Fatalf("workers=%d: BELLPACK differs (err=%v)", w, err)
		}

		sb, err := NewSlicedELLWith(m, 32, 128, seq)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSlicedELLWith(m, 32, 128, par)
		if err != nil || !reflect.DeepEqual(sb, sp) {
			t.Fatalf("workers=%d: SlicedELL differs (err=%v)", w, err)
		}

		eb, err := NewELLRTWith(m, 2, seq)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := NewELLRTWith(m, 2, par)
		if err != nil || !reflect.DeepEqual(eb, ep) {
			t.Fatalf("workers=%d: ELLR-T differs (err=%v)", w, err)
		}

		jb, err := NewPJDSWith(m, seq)
		if err != nil {
			t.Fatal(err)
		}
		jp, err := NewPJDSWith(m, par)
		if err != nil || !reflect.DeepEqual(jb, jp) {
			t.Fatalf("workers=%d: pJDS differs (err=%v)", w, err)
		}
	}
}

// TestSlicedELLWithMatchesLegacy pins the windowed parallel sort to the
// original NewSlicedELL semantics across σ values, including σ that
// does not divide n.
func TestSlicedELLWithMatchesLegacy(t *testing.T) {
	m := randomCSR(317, 80, 0.06, 29)
	for _, sigma := range []int{1, 32, 100, 317, 1 << 30} {
		want, err := NewSlicedELL(m, 16, sigma)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewSlicedELLWith(m, 16, sigma, matrix.ConvertOptions{Workers: 4, ForceParallel: true, Arena: matrix.NewArena()})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("sigma=%d: parallel SlicedELL differs from legacy build", sigma)
		}
	}
}
