package formats

import (
	"math"
	"math/rand"
	"testing"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

func TestBELLPACKMatchesReference(t *testing.T) {
	for _, blk := range [][2]int{{1, 1}, {2, 2}, {5, 5}, {4, 2}, {3, 7}} {
		m := randomCSR(130, 110, 0.06, int64(blk[0]*10+blk[1]))
		e, err := NewBELLPACK(m, blk[0], blk[1])
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 110)
		rng := rand.New(rand.NewSource(99))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, 130)
		ref := make([]float64, 130)
		if err := e.MulVec(y, x); err != nil {
			t.Fatal(err)
		}
		if err := m.MulVec(ref, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(y[i]-ref[i]) > 1e-11 {
				t.Fatalf("block %dx%d: y[%d] = %g, want %g", blk[0], blk[1], i, y[i], ref[i])
			}
		}
	}
}

func TestBELLPACKOnDLR2Blocks(t *testing.T) {
	// DLR2 is made of dense 5×5 blocks: BELLPACK(5,5) must have zero
	// fill-in and a 25× smaller index array than ELLPACK-R.
	m := matgen.DLR2(0.005, 1)
	e, err := NewBELLPACK(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e.FillIn != 0 {
		t.Errorf("fill-in %d on a 5x5-blocked matrix", e.FillIn)
	}
	// One index per 25 values.
	if got := int64(len(e.BlockCol)) * 25; got != e.StoredElems() {
		t.Errorf("index count %d vs stored %d", len(e.BlockCol), e.StoredElems())
	}
	// Footprint beats ELLPACK-R (index savings dominate).
	r := NewELLPACKR(m)
	if e.FootprintBytes() >= r.FootprintBytes() {
		t.Errorf("BELLPACK %d B not below ELLPACK-R %d B", e.FootprintBytes(), r.FootprintBytes())
	}
	if e.Name() != "BELLPACK(5x5)" {
		t.Errorf("name %q", e.Name())
	}
}

func TestBELLPACKFillInOnUnstructured(t *testing.T) {
	// Unstructured matrix: blocking pays a fill-in price.
	m := randomCSR(200, 200, 0.05, 7)
	e, err := NewBELLPACK(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.FillIn <= 0 {
		t.Error("expected fill-in on an unstructured matrix")
	}
	e1, err := NewBELLPACK(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.FillIn != 0 {
		t.Error("1x1 blocks cannot have fill-in")
	}
	// 1×1 BELLPACK degenerates to ELLPACK geometry.
	ell := NewELLPACK(m)
	if e1.StoredElems() != ell.StoredElems() {
		t.Errorf("1x1 stored %d != ELLPACK %d", e1.StoredElems(), ell.StoredElems())
	}
}

func TestBELLPACKValidationAndEdges(t *testing.T) {
	m := randomCSR(10, 10, 0.3, 8)
	if _, err := NewBELLPACK(m, 0, 5); err == nil {
		t.Error("br=0 accepted")
	}
	if _, err := NewBELLPACK(m, 5, -1); err == nil {
		t.Error("bc<0 accepted")
	}
	e, err := NewBELLPACK(m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.MulVec(make([]float64, 10), make([]float64, 9)); err == nil {
		t.Error("wrong x size accepted")
	}
	// Matrix whose columns are not a multiple of bc: the final ragged
	// block must be handled.
	coo := matrix.NewCOO[float64](7, 7)
	for i := 0; i < 7; i++ {
		coo.Add(i, 6, float64(i+1)) // last column
		coo.Add(i, i, 2)
	}
	mm := coo.ToCSR()
	eb, err := NewBELLPACK(mm, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1, 1, 1, 1, 1, 10}
	y := make([]float64, 7)
	ref := make([]float64, 7)
	if err := eb.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	if err := mm.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-ref[i]) > 1e-12 {
			t.Fatalf("ragged block: y[%d] = %g, want %g", i, y[i], ref[i])
		}
	}
}
