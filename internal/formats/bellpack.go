package formats

import (
	"fmt"

	"pjds/internal/matrix"
)

// BELLPACK is a blocked ELLPACK in the spirit of Choi, Singh and
// Vuduc's BELLPACK (the paper's reference [2], named in §II-A as a
// format that — unlike pJDS — exploits a priori knowledge of the
// matrix structure). The matrix is tiled into dense br×bc blocks; each
// block row stores its blocks ELLPACK-style, padded to the longest
// block row, with one column index per block instead of one per
// element. On matrices made of dense subblocks (DLR2's 5×5) this
// divides the index traffic by br·bc and is the structure-aware
// counterpoint in the format comparison; on unstructured matrices the
// zero fill-in inside partial blocks wastes space instead.
type BELLPACK[T matrix.Float] struct {
	N, NCols int
	NnzV     int
	// BR and BC are the block dimensions.
	BR, BC int
	// BlockRows = ceil(N/BR); BlockRowsPad rounds them up so that the
	// scalar rows of the padded block rows are a multiple of the warp
	// size.
	BlockRows    int
	BlockRowsPad int
	// MaxBlocks is the maximum number of blocks in a block row.
	MaxBlocks int
	// Val interleaves block elements across block rows, ELLPACK-style:
	// element (r, c) of block slot j in block row b lives at
	//
	//	((j·BC + c)·BlockRowsPad + b)·BR + r
	//
	// so for a fixed (j, c) the scalar rows of a whole warp touch
	// consecutive addresses — the coalescing that makes the blocked
	// kernel work.
	Val []T
	// BlockCol holds one column-block index per slot (same layout,
	// one entry per block).
	BlockCol []int32
	// BlockLen[b] is the true number of blocks in block row b.
	BlockLen []int32
	// FillIn is the number of explicit zeros stored inside partial
	// blocks (structure mismatch cost).
	FillIn int64
}

// NewBELLPACK tiles m into br×bc blocks and builds the blocked
// ELLPACK structure.
func NewBELLPACK[T matrix.Float](m *matrix.CSR[T], br, bc int) (*BELLPACK[T], error) {
	return NewBELLPACKWith(m, br, bc, matrix.ConvertOptions{})
}

// NewBELLPACKWith is NewBELLPACK with explicit conversion options.
// Both the block-structure discovery and the fill are parallel over
// block rows: block row b only writes blockCols[b] respectively its
// own Val/BlockCol slots, so worker blocks are disjoint and the result
// is bit-identical for every worker count.
func NewBELLPACKWith[T matrix.Float](m *matrix.CSR[T], br, bc int, opt matrix.ConvertOptions) (*BELLPACK[T], error) {
	if br < 1 || bc < 1 {
		return nil, fmt.Errorf("formats: BELLPACK block %dx%d", br, bc)
	}
	n := m.NRows
	blockRows := (n + br - 1) / br
	// Pad block rows so scalar rows are a multiple of the warp size.
	scalarPad := ((blockRows*br + WarpSize - 1) / WarpSize) * WarpSize
	blockRowsPad := scalarPad / br
	if scalarPad%br != 0 {
		blockRowsPad++
	}

	done := opt.Phase("bellpack-discover")
	workers := opt.EffectiveWorkers()
	// Discover the block structure per block row.
	blockCols := make([][]int32, blockRows)
	maxBlocksW := opt.Arena.Int(workers)
	opt.Run(blockRows, func(w, lo, hi int) {
		for b := lo; b < hi; b++ {
			seen := map[int32]bool{}
			for i := b * br; i < (b+1)*br && i < n; i++ {
				cols, _ := m.Row(i)
				for _, c := range cols {
					seen[c/int32(bc)] = true
				}
			}
			list := make([]int32, 0, len(seen))
			for c := range seen {
				list = append(list, c)
			}
			sortInt32s(list)
			blockCols[b] = list
			if len(list) > maxBlocksW[w] {
				maxBlocksW[w] = len(list)
			}
		}
	})
	maxBlocks := 0
	for _, v := range maxBlocksW {
		if v > maxBlocks {
			maxBlocks = v
		}
	}
	done()

	done = opt.Phase("bellpack-fill")
	e := &BELLPACK[T]{
		N: n, NCols: m.NCols, NnzV: m.Nnz(),
		BR: br, BC: bc,
		BlockRows: blockRows, BlockRowsPad: blockRowsPad,
		MaxBlocks: maxBlocks,
		Val:       make([]T, blockRowsPad*maxBlocks*br*bc),
		BlockCol:  make([]int32, blockRowsPad*maxBlocks),
		BlockLen:  make([]int32, blockRowsPad),
	}
	filledW := make([]int64, workers)
	opt.Run(blockRows, func(w, lo, hi int) {
		for b := lo; b < hi; b++ {
			e.BlockLen[b] = int32(len(blockCols[b]))
			slotOf := make(map[int32]int, len(blockCols[b]))
			for j, c := range blockCols[b] {
				slotOf[c] = j
				e.BlockCol[j*blockRowsPad+b] = c
			}
			for i := b * br; i < (b+1)*br && i < n; i++ {
				cols, vals := m.Row(i)
				for k, c := range cols {
					j := slotOf[c/int32(bc)]
					at := ((j*bc+int(c)%bc)*blockRowsPad+b)*br + (i - b*br)
					e.Val[at] = vals[k]
					filledW[w]++
				}
			}
		}
	})
	var filled int64
	for _, v := range filledW {
		filled += v
	}
	e.FillIn = blockStorage(e) - filled
	done()
	return e, nil
}

// blockStorage returns the value slots inside genuine (non-padding)
// blocks.
func blockStorage[T matrix.Float](e *BELLPACK[T]) int64 {
	var s int64
	for _, l := range e.BlockLen {
		s += int64(l) * int64(e.BR*e.BC)
	}
	return s
}

func sortInt32s(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Name implements Format.
func (e *BELLPACK[T]) Name() string { return fmt.Sprintf("BELLPACK(%dx%d)", e.BR, e.BC) }

// Rows implements Format.
func (e *BELLPACK[T]) Rows() int { return e.N }

// Cols implements Format.
func (e *BELLPACK[T]) Cols() int { return e.NCols }

// NonZeros implements Format.
func (e *BELLPACK[T]) NonZeros() int { return e.NnzV }

// StoredElems implements Format: every value slot of the padded block
// grid.
func (e *BELLPACK[T]) StoredElems() int64 { return int64(len(e.Val)) }

// FootprintBytes implements Format: values plus one index per block
// plus the block-length array.
func (e *BELLPACK[T]) FootprintBytes() int64 {
	return e.StoredElems()*int64(SizeofElem[T]()) + int64(len(e.BlockCol))*4 + int64(len(e.BlockLen))*4
}

// MulVec implements Format: each scalar row walks its block row's
// blocks (ELLPACK-R style, stopping at the true block count).
func (e *BELLPACK[T]) MulVec(y, x []T) error {
	if len(x) != e.NCols || len(y) != e.N {
		return fmt.Errorf("formats: BELLPACK MulVec |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	for i := 0; i < e.N; i++ {
		b := i / e.BR
		r := i % e.BR
		var sum T
		for j := 0; j < int(e.BlockLen[b]); j++ {
			cb := int(e.BlockCol[j*e.BlockRowsPad+b]) * e.BC
			for c := 0; c < e.BC; c++ {
				xc := cb + c
				if xc >= e.NCols {
					break
				}
				sum += e.Val[((j*e.BC+c)*e.BlockRowsPad+b)*e.BR+r] * x[xc]
			}
		}
		y[i] = sum
	}
	return nil
}
