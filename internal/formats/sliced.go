package formats

import (
	"fmt"

	"pjds/internal/matrix"
)

// SlicedELL is the sliced-ELLPACK format family (Monakov et al. [12],
// Dziekonski et al. [13] — the related work named in the paper's
// outlook, and the direct precursor of SELL-C-σ). The matrix is cut
// into slices of C consecutive rows; each slice is padded to its own
// maximum row length and stored column-major within the slice.
//
// With SortWindow σ > 1, rows are pre-sorted by descending length
// inside windows of σ rows before slicing, which reduces padding
// without the global permutation of pJDS (σ = N reproduces the global
// sort; σ = 1 keeps the original order). This doubles as the
// DESIGN.md "sorting window" ablation for pJDS.
type SlicedELL[T matrix.Float] struct {
	N     int
	NCols int
	NPad  int // N rounded up to a multiple of C
	NnzV  int
	// C is the slice height (typically the warp size).
	C int
	// SortWindow is σ; 1 means no sorting.
	SortWindow int
	MaxRowLen  int

	// Val and ColIdx hold each slice's padded rectangle column-major
	// within the slice: slice s occupies
	// Val[SliceStart[s]:SliceStart[s+1]], and element (lane, j) of the
	// slice is at SliceStart[s] + j*C + lane.
	Val    []T
	ColIdx []int32
	// SliceStart has NPad/C+1 entries.
	SliceStart []int64
	// SliceLen[s] is the padded row length of slice s.
	SliceLen []int32
	// RowLen[i] is the true length of (permuted) row i.
	RowLen []int32
	// Perm maps stored row order to original rows (identity when
	// SortWindow == 1).
	Perm matrix.Perm
}

// NewSlicedELL builds a sliced-ELLPACK matrix with slice height c and
// sorting window sigma (use 1 for unsorted, m.NRows for a global
// sort). c must be ≥ 1; sigma is clamped to [1, N] and rounded up to a
// multiple of c so slices never straddle windows.
func NewSlicedELL[T matrix.Float](m *matrix.CSR[T], c, sigma int) (*SlicedELL[T], error) {
	return NewSlicedELLWith(m, c, sigma, matrix.ConvertOptions{})
}

// NewSlicedELLWith is NewSlicedELL with explicit conversion options.
// The windowed sort runs in-place on a shared row-length array with
// one stable counting sort per window (no more per-window RowSlice
// copies), windows parallelized across workers; the slice fill is
// parallel over rows. Every worker count builds the identical matrix.
func NewSlicedELLWith[T matrix.Float](m *matrix.CSR[T], c, sigma int, opt matrix.ConvertOptions) (*SlicedELL[T], error) {
	if c < 1 {
		return nil, fmt.Errorf("formats: slice height %d < 1", c)
	}
	n := m.NRows
	if sigma < 1 {
		sigma = 1
	}
	if sigma > 1 && sigma < n && sigma%c != 0 {
		sigma = ((sigma + c - 1) / c) * c
	}
	if sigma > n {
		sigma = n
	}

	doneSort := opt.Phase("sliced-sort")
	workers := opt.EffectiveWorkers()
	// Row lengths and the global maximum, shared by the windowed sort
	// and the slice layout below.
	lens := opt.Arena.Int(n)
	maxW := opt.Arena.Int(workers)
	opt.Run(n, func(w, lo, hi int) {
		max := 0
		for i := lo; i < hi; i++ {
			l := m.RowLen(i)
			lens[i] = l
			if l > max {
				max = l
			}
		}
		if max > maxW[w] {
			maxW[w] = max
		}
	})
	maxLen := 0
	for _, v := range maxW {
		if v > maxLen {
			maxLen = v
		}
	}

	// Windowed sort: sort rows by descending length within each window
	// of sigma rows. Windows are independent, so they distribute over
	// workers with one counting-sort scratch buffer each.
	perm := matrix.Identity(n)
	if sigma > 1 && n > 0 {
		nWindows := (n + sigma - 1) / sigma
		counts := make([][]int, workers)
		for w := range counts {
			counts[w] = opt.Arena.Int(maxLen + 2)
		}
		opt.Run(nWindows, func(w, lo, hi int) {
			for win := lo; win < hi; win++ {
				wlo := win * sigma
				whi := wlo + sigma
				if whi > n {
					whi = n
				}
				matrix.SortRangeByLengthDesc(lens, wlo, whi, perm, counts[w])
			}
		})
	}
	doneSort()

	doneFill := opt.Phase("sliced-fill")
	npad := ((n + c - 1) / c) * c
	s := &SlicedELL[T]{
		N:          n,
		NCols:      m.NCols,
		NPad:       npad,
		NnzV:       m.Nnz(),
		C:          c,
		SortWindow: sigma,
		MaxRowLen:  maxLen,
		RowLen:     make([]int32, npad),
		Perm:       perm,
	}
	opt.Run(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.RowLen[i] = int32(lens[perm[i]])
		}
	})

	nSlices := npad / c
	s.SliceStart = make([]int64, nSlices+1)
	s.SliceLen = make([]int32, nSlices)
	var total int64
	for sl := 0; sl < nSlices; sl++ {
		maxLen := int32(0)
		for lane := 0; lane < c; lane++ {
			if l := s.RowLen[sl*c+lane]; l > maxLen {
				maxLen = l
			}
		}
		s.SliceLen[sl] = maxLen
		s.SliceStart[sl] = total
		total += int64(maxLen) * int64(c)
	}
	s.SliceStart[nSlices] = total

	s.Val = make([]T, total)
	s.ColIdx = make([]int32, total)
	opt.Run(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := m.Row(perm[i])
			safe := int32(0)
			if len(cols) > 0 {
				safe = cols[0]
			}
			sl, lane := i/c, i%c
			base := s.SliceStart[sl]
			for j := 0; j < int(s.SliceLen[sl]); j++ {
				at := base + int64(j*c+lane)
				if j < len(cols) {
					s.Val[at] = vals[j]
					s.ColIdx[at] = cols[j]
				} else {
					s.ColIdx[at] = safe
				}
			}
		}
	})
	doneFill()
	return s, nil
}

// Name implements Format.
func (s *SlicedELL[T]) Name() string {
	if s.SortWindow > 1 {
		return "sliced-ELL-sorted"
	}
	return "sliced-ELL"
}

// Rows implements Format.
func (s *SlicedELL[T]) Rows() int { return s.N }

// Cols implements Format.
func (s *SlicedELL[T]) Cols() int { return s.NCols }

// NonZeros implements Format.
func (s *SlicedELL[T]) NonZeros() int { return s.NnzV }

// StoredElems implements Format.
func (s *SlicedELL[T]) StoredElems() int64 { return int64(len(s.Val)) }

// FootprintBytes implements Format: padded slices, the slice-offset
// and slice-length arrays, row lengths, and the permutation when a
// sort was applied.
func (s *SlicedELL[T]) FootprintBytes() int64 {
	b := s.StoredElems()*int64(SizeofElem[T]()+4) +
		int64(len(s.SliceStart))*8 +
		int64(len(s.SliceLen))*4 +
		int64(len(s.RowLen))*4
	if s.SortWindow > 1 {
		b += int64(len(s.Perm)) * 4
	}
	return b
}

// RowPerm implements RowPermuted.
func (s *SlicedELL[T]) RowPerm() matrix.Perm { return s.Perm }

// MulVecPermuted computes yp = Ap·xp with sorted-row output, the
// sliced-ELLR-T kernel with one thread per row.
func (s *SlicedELL[T]) MulVecPermuted(yp, xp []T) error {
	if len(xp) != s.NCols || len(yp) < s.N {
		return fmt.Errorf("formats: sliced MulVecPermuted |x|=%d |y|=%d on %dx%d: %w", len(xp), len(yp), s.N, s.NCols, matrix.ErrShape)
	}
	for i := 0; i < s.N; i++ {
		sl, lane := i/s.C, i%s.C
		base := s.SliceStart[sl]
		var sum T
		for j := 0; j < int(s.RowLen[i]); j++ {
			at := base + int64(j*s.C+lane)
			sum += s.Val[at] * xp[s.ColIdx[at]]
		}
		yp[i] = sum
	}
	return nil
}

// MulVec implements Format in the original basis.
func (s *SlicedELL[T]) MulVec(y, x []T) error {
	if len(x) != s.NCols || len(y) != s.N {
		return fmt.Errorf("formats: sliced MulVec |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), s.N, s.NCols, matrix.ErrShape)
	}
	if s.SortWindow <= 1 {
		return s.MulVecPermuted(y, x)
	}
	yp := make([]T, s.N)
	if err := s.MulVecPermuted(yp, x); err != nil {
		return err
	}
	matrix.Scatter(y, yp, s.Perm)
	return nil
}
