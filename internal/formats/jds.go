package formats

import (
	"pjds/internal/core"
	"pjds/internal/matrix"
)

// NewJDS builds the classic (unpadded) Jagged Diagonals Storage used
// on vector computers, which the paper derives pJDS from. It is the
// br = 1 degenerate case of pJDS: global sort, no per-block padding,
// zero storage overhead.
func NewJDS[T matrix.Float](m *matrix.CSR[T]) (*core.PJDS[T], error) {
	return core.NewPJDS(m, core.Options{BlockHeight: 1})
}

// NewPJDS builds the paper's pJDS format with the default block
// height (the warp size); re-exported here so format shoot-outs can
// construct every format through one package.
func NewPJDS[T matrix.Float](m *matrix.CSR[T]) (*core.PJDS[T], error) {
	return core.NewPJDS(m, core.Options{BlockHeight: core.DefaultBlockHeight})
}
