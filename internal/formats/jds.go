package formats

import (
	"pjds/internal/core"
	"pjds/internal/matrix"
)

// NewJDS builds the classic (unpadded) Jagged Diagonals Storage used
// on vector computers, which the paper derives pJDS from. It is the
// br = 1 degenerate case of pJDS: global sort, no per-block padding,
// zero storage overhead.
func NewJDS[T matrix.Float](m *matrix.CSR[T]) (*core.PJDS[T], error) {
	return core.NewPJDS(m, core.Options{BlockHeight: 1})
}

// NewJDSWith is NewJDS with explicit conversion options.
func NewJDSWith[T matrix.Float](m *matrix.CSR[T], opt matrix.ConvertOptions) (*core.PJDS[T], error) {
	return core.NewPJDS(m, core.Options{BlockHeight: 1, Convert: opt})
}

// NewPJDS builds the paper's pJDS format with the default block
// height (the warp size); re-exported here so format shoot-outs can
// construct every format through one package.
func NewPJDS[T matrix.Float](m *matrix.CSR[T]) (*core.PJDS[T], error) {
	return core.NewPJDS(m, core.Options{BlockHeight: core.DefaultBlockHeight})
}

// NewPJDSWith is NewPJDS with explicit conversion options.
func NewPJDSWith[T matrix.Float](m *matrix.CSR[T], opt matrix.ConvertOptions) (*core.PJDS[T], error) {
	return core.NewPJDS(m, core.Options{BlockHeight: core.DefaultBlockHeight, Convert: opt})
}
