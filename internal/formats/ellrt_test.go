package formats

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"pjds/internal/matrix"
)

func TestELLRTMatchesReference(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		m := randomCSR(120, 100, 0.08, int64(threads))
		e, err := NewELLRT(m, threads)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 100)
		rng := rand.New(rand.NewSource(int64(threads) + 40))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, 120)
		ref := make([]float64, 120)
		if err := e.MulVec(y, x); err != nil {
			t.Fatal(err)
		}
		if err := m.MulVec(ref, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(y[i]-ref[i]) > 1e-11 {
				t.Fatalf("T=%d: y[%d] = %g, want %g", threads, i, y[i], ref[i])
			}
		}
	}
}

func TestELLRTValidation(t *testing.T) {
	m := randomCSR(10, 10, 0.3, 1)
	for _, bad := range []int{0, -1, 3, 5, 7, 33, 64} {
		if _, err := NewELLRT(m, bad); err == nil {
			t.Errorf("T=%d accepted", bad)
		}
	}
	e, err := NewELLRT(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.MulVec(make([]float64, 10), make([]float64, 9)); err == nil {
		t.Error("wrong x size accepted")
	}
	if e.Name() != "ELLR-T(4)" {
		t.Errorf("name %q", e.Name())
	}
}

func TestELLRTStorageGeometry(t *testing.T) {
	// MaxRowLen 7 with T=4 pads iterations to 8.
	coo := matrix.NewCOO[float64](10, 20)
	for j := 0; j < 7; j++ {
		coo.Add(0, j, 1)
	}
	coo.Add(1, 0, 1)
	m := coo.ToCSR()
	e, err := NewELLRT(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxLenPadded != 8 {
		t.Errorf("padded len = %d, want 8", e.MaxLenPadded)
	}
	if e.StoredElems() != int64(e.NPad)*8 {
		t.Errorf("stored = %d", e.StoredElems())
	}
	// T=1 degenerates to ELLPACK-R geometry.
	e1, err := NewELLRT(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewELLPACKR(m)
	if e1.StoredElems() != r.StoredElems() {
		t.Errorf("T=1 stored %d != ELLPACK-R %d", e1.StoredElems(), r.StoredElems())
	}
}

// Property: the interleaved index mapping is a bijection onto the
// storage for every legal T.
func TestELLRTIndexBijective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed & 0xffff))
		threads := []int{1, 2, 4, 8, 16, 32}[rng.Intn(6)]
		m := randomCSR(40, 40, 0.2, seed&0xff)
		e, err := NewELLRT(m, threads)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for i := 0; i < e.NPad; i++ {
			for j := 0; j < e.MaxLenPadded; j++ {
				at := e.index(i, j)
				if at < 0 || at >= len(e.Val) || seen[at] {
					return false
				}
				seen[at] = true
			}
		}
		return len(seen) == len(e.Val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
