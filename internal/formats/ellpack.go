package formats

import (
	"fmt"

	"pjds/internal/matrix"
)

// WarpSize is the SIMD width of the Fermi GPUs the paper targets; the
// ELLPACK row dimension is padded to a multiple of it (§II-A,
// footnote 2).
const WarpSize = 32

// ELLPACK is the original ELLPACK/ITPACK format: every row is padded
// to the global maximum row length N^max_nzr and the resulting
// rectangular N×N^max_nzr array is stored column by column, giving
// coalesced loads for consecutive threads. The plain-ELLPACK kernel
// also *computes* on the padding (Fig. 2a), which ELLPACK-R avoids.
type ELLPACK[T matrix.Float] struct {
	N     int // logical rows
	NCols int
	NPad  int // N rounded up to a multiple of WarpSize
	NnzV  int // genuine non-zeros
	// MaxRowLen is N^max_nzr.
	MaxRowLen int
	// Val and ColIdx are NPad×MaxRowLen column-major: element (i, j)
	// lives at index j*NPad+i, as in Listing 1. Padding slots hold
	// value 0 and a safe in-range column index.
	Val    []T
	ColIdx []int32
	// RowLen[i] is the true length of row i (the ELLPACK-R rowmax[]
	// array; plain ELLPACK ignores it in the kernel but we keep one
	// copy so both variants share storage).
	RowLen []int32
}

// NewELLPACK builds the ELLPACK representation of m.
func NewELLPACK[T matrix.Float](m *matrix.CSR[T]) *ELLPACK[T] {
	return NewELLPACKWith(m, matrix.ConvertOptions{})
}

// NewELLPACKWith is NewELLPACK with explicit conversion options. The
// fill loop is parallel over rows — row i writes only slots j·NPad+i,
// so worker blocks never overlap and the result is bit-identical for
// every worker count.
func NewELLPACKWith[T matrix.Float](m *matrix.CSR[T], opt matrix.ConvertOptions) *ELLPACK[T] {
	done := opt.Phase("ellpack-fill")
	defer done()
	n := m.NRows
	npad := ((n + WarpSize - 1) / WarpSize) * WarpSize
	maxLen := m.MaxRowLen()
	e := &ELLPACK[T]{
		N:         n,
		NCols:     m.NCols,
		NPad:      npad,
		NnzV:      m.Nnz(),
		MaxRowLen: maxLen,
		Val:       make([]T, npad*maxLen),
		ColIdx:    make([]int32, npad*maxLen),
		RowLen:    make([]int32, npad),
	}
	opt.Run(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := m.Row(i)
			e.RowLen[i] = int32(len(cols))
			safe := int32(0)
			if len(cols) > 0 {
				safe = cols[0]
			}
			for j := 0; j < maxLen; j++ {
				at := j*npad + i
				if j < len(cols) {
					e.Val[at] = vals[j]
					e.ColIdx[at] = cols[j]
				} else {
					e.ColIdx[at] = safe
				}
			}
		}
	})
	return e
}

// Name implements Format.
func (e *ELLPACK[T]) Name() string { return "ELLPACK" }

// Rows implements Format.
func (e *ELLPACK[T]) Rows() int { return e.N }

// Cols implements Format.
func (e *ELLPACK[T]) Cols() int { return e.NCols }

// NonZeros implements Format.
func (e *ELLPACK[T]) NonZeros() int { return e.NnzV }

// StoredElems implements Format: the full padded rectangle.
func (e *ELLPACK[T]) StoredElems() int64 { return int64(e.NPad) * int64(e.MaxRowLen) }

// FootprintBytes implements Format (values + indices; plain ELLPACK
// has no auxiliary arrays).
func (e *ELLPACK[T]) FootprintBytes() int64 {
	return e.StoredElems() * int64(SizeofElem[T]()+4)
}

// MulVec implements Format with the plain ELLPACK kernel, which visits
// every padded slot (the wasted work of Fig. 2a).
func (e *ELLPACK[T]) MulVec(y, x []T) error {
	if len(x) != e.NCols || len(y) != e.N {
		return fmt.Errorf("formats: ELLPACK MulVec |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	for i := 0; i < e.N; i++ {
		var sum T
		for j := 0; j < e.MaxRowLen; j++ {
			at := j*e.NPad + i
			sum += e.Val[at] * x[e.ColIdx[at]]
		}
		y[i] = sum
	}
	return nil
}

// ELLPACKR is the ELLPACK-R variant of Vázquez et al.: identical
// storage, but the kernel stops each row at its true length
// (Listing 1), trading redundant computation for warp-level load
// imbalance (Fig. 2b).
type ELLPACKR[T matrix.Float] struct {
	ELLPACK[T]
}

// NewELLPACKR builds the ELLPACK-R representation of m.
func NewELLPACKR[T matrix.Float](m *matrix.CSR[T]) *ELLPACKR[T] {
	return &ELLPACKR[T]{ELLPACK: *NewELLPACK(m)}
}

// NewELLPACKRWith is NewELLPACKR with explicit conversion options.
func NewELLPACKRWith[T matrix.Float](m *matrix.CSR[T], opt matrix.ConvertOptions) *ELLPACKR[T] {
	return &ELLPACKR[T]{ELLPACK: *NewELLPACKWith(m, opt)}
}

// Name implements Format.
func (e *ELLPACKR[T]) Name() string { return "ELLPACK-R" }

// FootprintBytes implements Format: ELLPACK storage plus the rowmax[]
// array.
func (e *ELLPACKR[T]) FootprintBytes() int64 {
	return e.ELLPACK.FootprintBytes() + int64(len(e.RowLen))*4
}

// MulVec implements Format with the ELLPACK-R kernel of Listing 1.
func (e *ELLPACKR[T]) MulVec(y, x []T) error {
	if len(x) != e.NCols || len(y) != e.N {
		return fmt.Errorf("formats: ELLPACK-R MulVec |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	for i := 0; i < e.N; i++ {
		var sum T
		for j := 0; j < int(e.RowLen[i]); j++ {
			at := j*e.NPad + i
			sum += e.Val[at] * x[e.ColIdx[at]]
		}
		y[i] = sum
	}
	return nil
}
