// Package formats implements the GPU sparse-matrix storage formats the
// paper compares pJDS against: ELLPACK (Grimes/Kincaid/Young; Bell &
// Garland on GPUs), ELLPACK-R (Vázquez et al.), the classic JDS, and
// the sliced-ELLPACK family of Monakov et al. / Dziekonski et al. that
// the paper's outlook section names as concurrent related work. CRS is
// provided by internal/matrix; pJDS itself, being the contribution,
// lives in internal/core.
//
// Every format exposes its raw arrays so the SIMT simulator in
// internal/gpu can replay the exact memory-access pattern of the
// corresponding CUDA kernel.
package formats

import (
	"pjds/internal/core"
	"pjds/internal/matrix"
)

// Format is the common surface of all spMVM storage formats. The pJDS
// type of internal/core satisfies it structurally.
type Format[T matrix.Float] interface {
	// Name identifies the format ("ELLPACK", "ELLPACK-R", "pJDS", ...).
	Name() string
	// Rows and Cols are the logical (unpadded) matrix dimensions.
	Rows() int
	Cols() int
	// NonZeros is the number of genuine non-zero entries.
	NonZeros() int
	// StoredElems is the number of stored value slots including
	// padding; the data-reduction figures of Table I compare these.
	StoredElems() int64
	// FootprintBytes is the total device-memory footprint of the
	// matrix data (values, indices, auxiliary arrays).
	FootprintBytes() int64
	// MulVec computes y = A·x in the original basis.
	MulVec(y, x []T) error
}

// RowPermuted is implemented by formats that reorder rows (JDS, pJDS,
// sorted sliced ELLPACK); solvers use it to move in and out of the
// permuted basis exactly once per solve.
type RowPermuted interface {
	RowPerm() matrix.Perm
}

// SizeofElem reports the element byte width (4 for float32, 8 for
// float64); re-exported from internal/core for convenience.
func SizeofElem[T matrix.Float]() int { return core.SizeofElem[T]() }

// DataReduction returns the fractional reduction of stored value slots
// of format b relative to format a: 1 − stored(b)/stored(a). Table I's
// first row is DataReduction(ELLPACK, pJDS).
func DataReduction[T matrix.Float](a, b Format[T]) float64 {
	sa := a.StoredElems()
	if sa == 0 {
		return 0
	}
	return 1 - float64(b.StoredElems())/float64(sa)
}

// CRS adapts matrix.CSR to the Format interface so the CPU reference
// participates in format comparisons (Table I's Westmere row).
type CRS[T matrix.Float] struct {
	M *matrix.CSR[T]
}

// NewCRS wraps an existing CSR matrix.
func NewCRS[T matrix.Float](m *matrix.CSR[T]) *CRS[T] { return &CRS[T]{M: m} }

// Name implements Format.
func (c *CRS[T]) Name() string { return "CRS" }

// Rows implements Format.
func (c *CRS[T]) Rows() int { return c.M.NRows }

// Cols implements Format.
func (c *CRS[T]) Cols() int { return c.M.NCols }

// NonZeros implements Format.
func (c *CRS[T]) NonZeros() int { return c.M.Nnz() }

// StoredElems implements Format: CRS stores exactly the non-zeros.
func (c *CRS[T]) StoredElems() int64 { return int64(c.M.Nnz()) }

// FootprintBytes implements Format: values, column indices and the
// row-pointer array (8-byte offsets, as for matrices beyond 2³¹ nnz).
func (c *CRS[T]) FootprintBytes() int64 {
	return int64(c.M.Nnz())*int64(SizeofElem[T]()+4) + int64(len(c.M.RowPtr))*8
}

// MulVec implements Format with the sequential reference kernel.
func (c *CRS[T]) MulVec(y, x []T) error { return c.M.MulVec(y, x) }
