package formats

import "testing"

func benchTarget(b *testing.B) ( /* m */ func() []Format[float64], []float64, []float64) {
	b.Helper()
	m := randomCSR(3000, 3000, 0.01, 3)
	build := func() []Format[float64] {
		pj, err := NewPJDS(m)
		if err != nil {
			b.Fatal(err)
		}
		sell, err := NewSlicedELL(m, 32, m.NRows)
		if err != nil {
			b.Fatal(err)
		}
		return []Format[float64]{NewCRS(m), NewELLPACK(m), NewELLPACKR(m), pj, sell}
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	return build, make([]float64, m.NRows), x
}

// BenchmarkMulVecByFormat compares the host kernels of every format on
// one matrix.
func BenchmarkMulVecByFormat(b *testing.B) {
	build, y, x := benchTarget(b)
	for _, f := range build() {
		b.Run(f.Name(), func(b *testing.B) {
			b.SetBytes(int64(f.NonZeros()) * 12)
			for i := 0; i < b.N; i++ {
				if err := f.MulVec(y, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildByFormat compares conversion costs from CSR.
func BenchmarkBuildByFormat(b *testing.B) {
	m := randomCSR(3000, 3000, 0.01, 3)
	b.Run("ELLPACK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = NewELLPACK(m)
		}
	})
	b.Run("ELLPACK-R", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = NewELLPACKR(m)
		}
	})
	b.Run("pJDS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewPJDS(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sliced-ELL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewSlicedELL(m, 32, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}
