package formats

import (
	"fmt"

	"pjds/internal/matrix"
)

// SELL-C-σ is the unified chunked format of Kreutzer et al.
// (arXiv:1307.6209) that generalizes both the paper's pJDS and the
// sliced-ELLPACK family: the matrix is cut into chunks of C rows
// padded to the chunk maximum, after sorting rows by descending
// length inside windows of σ rows. The SlicedELL type of this package
// is exactly that parameterization — this file adds the SELL-C-σ
// vocabulary on top of it: the canonical names, the named presets the
// repo's fixed formats correspond to, and the zero-padding overhead β
// that the (C, σ) auto-tuner minimizes.
//
//   - pJDS           = SELL-32-∞ (global sort, warp-height chunks)
//   - plain SlicedELL = SELL-C-1  (no sort)
//
// See DESIGN.md "SELL-C-σ and the format tuner" for the full mapping
// to the paper's quantities.

// SELLName renders the canonical SELL-C-σ name for a chunk height c
// and sorting scope sigma on an n-row matrix: "SELL-32-∞" when the
// window covers the whole matrix (the pJDS/global-sort case),
// "SELL-8-256" otherwise.
func SELLName(c, sigma, n int) string {
	if sigma >= n && n > 0 {
		return fmt.Sprintf("SELL-%d-∞", c)
	}
	if sigma < 1 {
		sigma = 1
	}
	return fmt.Sprintf("SELL-%d-%d", c, sigma)
}

// NewSELLCSigma builds the SELL-C-σ layout with explicit chunk height
// and sorting scope — the tunable constructor the (C, σ) auto-tuner
// sweeps. It is NewSlicedELLWith under the canonical name.
func NewSELLCSigma[T matrix.Float](m *matrix.CSR[T], c, sigma int, opt matrix.ConvertOptions) (*SlicedELL[T], error) {
	return NewSlicedELLWith(m, c, sigma, opt)
}

// NewSELLPJDSEquivalent builds the SELL-32-∞ preset: globally sorted
// rows in warp-height chunks, the SELL-C-σ point that reproduces the
// paper's pJDS layout (identical permutation, identical stored-element
// count — only the column-major-in-chunk storage differs from pJDS's
// jagged diagonals).
func NewSELLPJDSEquivalent[T matrix.Float](m *matrix.CSR[T], opt matrix.ConvertOptions) (*SlicedELL[T], error) {
	return NewSlicedELLWith(m, 32, m.NRows, opt)
}

// NewSELLC1 builds the unsorted SELL-C-1 preset: the original
// sliced-ELLPACK of Monakov et al., rows in matrix order.
func NewSELLC1[T matrix.Float](m *matrix.CSR[T], c int, opt matrix.ConvertOptions) (*SlicedELL[T], error) {
	return NewSlicedELLWith(m, c, 1, opt)
}

// SELLName returns the canonical SELL-C-σ name of this layout
// ("SELL-32-∞", "SELL-8-256"). Name() keeps the historical
// "sliced-ELL"/"sliced-ELL-sorted" identifiers that label plans and
// telemetry; this is the paper-facing parameterized name.
func (s *SlicedELL[T]) SELLName() string { return SELLName(s.C, s.SortWindow, s.N) }

// ZeroPadding returns the zero-padding overhead β = stored/nnz − 1:
// the fraction of stored value slots that are padding. β is the
// quantity σ exists to shrink — §II-A's data-reduction table reports
// 1/(1+β) relative to the respective dense-chunk baseline.
func (s *SlicedELL[T]) ZeroPadding() float64 { return ZeroPadding[T](s) }

// ZeroPadding computes β = stored/nnz − 1 for any format; 0 for
// padding-free formats such as CRS and CMRS.
func ZeroPadding[T matrix.Float](f Format[T]) float64 {
	nnz := f.NonZeros()
	if nnz == 0 {
		return 0
	}
	return float64(f.StoredElems())/float64(nnz) - 1
}

// ChunkOccupancy returns nnz/stored = 1/(1+β): the fraction of stored
// slots holding genuine non-zeros (CMRS's "chunk occupancy" measure,
// 1.0 for padding-free formats).
func ChunkOccupancy[T matrix.Float](f Format[T]) float64 {
	stored := f.StoredElems()
	if stored == 0 {
		return 1
	}
	return float64(f.NonZeros()) / float64(stored)
}

// EstimateBeta predicts the zero-padding overhead β of a SELL-C-σ
// layout from row lengths alone, without building the matrix: it
// replays the conversion's window clamping and windowed sort on the
// length array and sums per-slice padded rectangles. The tuner's
// Eq. 1 pruning pass calls this for every (C, σ) grid cell, so only
// surviving cells pay for a real conversion.
func EstimateBeta(lens []int, c, sigma int) float64 {
	n := len(lens)
	if n == 0 || c < 1 {
		return 0
	}
	// Mirror NewSlicedELLWith's clamping so the estimate is exact.
	if sigma < 1 {
		sigma = 1
	}
	if sigma > 1 && sigma < n && sigma%c != 0 {
		sigma = ((sigma + c - 1) / c) * c
	}
	if sigma > n {
		sigma = n
	}
	maxLen := 0
	var nnz int64
	for _, l := range lens {
		nnz += int64(l)
		if l > maxLen {
			maxLen = l
		}
	}
	if nnz == 0 {
		return 0
	}
	sorted := lens
	if sigma > 1 {
		perm := matrix.Identity(n)
		count := make([]int, maxLen+2)
		for lo := 0; lo < n; lo += sigma {
			matrix.SortRangeByLengthDesc(lens, lo, min(lo+sigma, n), perm, count)
		}
		sorted = make([]int, n)
		for i, p := range perm {
			sorted[i] = lens[p]
		}
	}
	var stored int64
	for lo := 0; lo < n; lo += c {
		sliceMax := 0
		for i := lo; i < lo+c && i < n; i++ {
			if sorted[i] > sliceMax {
				sliceMax = sorted[i]
			}
		}
		stored += int64(sliceMax) * int64(c)
	}
	return float64(stored)/float64(nnz) - 1
}
