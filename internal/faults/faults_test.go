package faults

import (
	"math"
	"strings"
	"testing"
)

const script = `
# chaos schedule
drop link=0->1 nth=3 attempts=2
drop all prob=0.01
delay link=1->0 nth=1 by=50us
dup link=0->1 nth=5
degrade link=2->3 factor=4
slow rank=2 factor=3
crash rank=1 iter=5
ecc rank=2 launch=6
`

func TestParseAndMatch(t *testing.T) {
	p, err := Parse(42, script)
	if err != nil {
		t.Fatal(err)
	}
	// nth=3 on 0->1 is seq 2 (1-based nth), two lost attempts.
	f := p.OnSend(0, 1, 9, 100, 2)
	if f.DropAttempts < 2 {
		t.Errorf("nth drop: %+v", f)
	}
	// delay 1->0 first message.
	f = p.OnSend(1, 0, 0, 8, 0)
	if math.Abs(f.ExtraDelaySeconds-50e-6) > 1e-18 {
		t.Errorf("delay = %g, want 50us", f.ExtraDelaySeconds)
	}
	// dup 0->1 fifth message.
	if f = p.OnSend(0, 1, 0, 8, 4); !f.Duplicate {
		t.Error("nth dup did not fire")
	}
	// degrade applies to every 2->3 message.
	if f = p.OnSend(2, 3, 0, 8, 7); f.BandwidthFactor != 4 {
		t.Errorf("degrade factor = %g", f.BandwidthFactor)
	}
	if got := p.SlowFactor(2); got != 3 {
		t.Errorf("slow factor = %g", got)
	}
	if got := p.SlowFactor(0); got != 1 {
		t.Errorf("healthy rank slowed: %g", got)
	}
	if it, ok := p.CrashIter(1); !ok || it != 5 {
		t.Errorf("crash iter = %d, %v", it, ok)
	}
	if len(p.Rules()) != 8 {
		t.Errorf("rules = %d: %v", len(p.Rules()), p.Rules())
	}
}

func TestDeterministicSchedule(t *testing.T) {
	a := MustParse(7, "drop all prob=0.2\ndelay all prob=0.1 by=1ms")
	b := MustParse(7, "drop all prob=0.2\ndelay all prob=0.1 by=1ms")
	c := MustParse(8, "drop all prob=0.2\ndelay all prob=0.1 by=1ms")
	same, diff := 0, 0
	for seq := int64(0); seq < 2000; seq++ {
		fa, fb, fc := a.OnSend(0, 1, 0, 8, seq), b.OnSend(0, 1, 0, 8, seq), c.OnSend(0, 1, 0, 8, seq)
		if fa != fb {
			t.Fatalf("seq %d: same seed diverged: %+v vs %+v", seq, fa, fb)
		}
		if fa == fc {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical schedules")
	}
}

func TestProbabilisticRate(t *testing.T) {
	p := MustParse(3, "drop all prob=0.1")
	hits := 0
	const n = 20000
	for seq := int64(0); seq < n; seq++ {
		if p.OnSend(0, 1, 0, 8, seq).DropAttempts > 0 {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("drop rate = %g, want ≈ 0.1", rate)
	}
}

func TestOneShotEvents(t *testing.T) {
	p := MustParse(1, "crash rank=1 iter=5\necc rank=2 launch=3")
	if p.CrashNow(1, 4) || p.CrashNow(0, 5) {
		t.Error("crash fired off schedule")
	}
	if !p.CrashNow(1, 5) {
		t.Error("crash did not fire")
	}
	if p.CrashNow(1, 5) {
		t.Error("crash fired twice")
	}
	d := p.DeviceFor(2)
	for l := 0; l < 3; l++ {
		if d.ECCEvent("k") {
			t.Errorf("ECC fired at launch %d", l)
		}
	}
	if !d.ECCEvent("k") {
		t.Error("ECC did not fire at launch 3")
	}
	if d.ECCEvent("k") {
		t.Error("ECC fired twice")
	}
	p.Reset()
	if !p.CrashNow(1, 5) {
		t.Error("Reset did not re-arm the crash")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"explode rank=1",
		"drop nth=1",             // no target
		"drop all",               // no nth/prob
		"drop link=0->0 nth=1",   // self link
		"drop all prob=1.5",      // prob out of range
		"delay all prob=0.1",     // missing by
		"degrade all factor=0.5", // factor ≤ 1
		"crash rank=1",           // missing iter
		"ecc rank=1",             // missing launch
		"slow rank=1 factor=1",   // factor ≤ 1
		"drop link=0>1 nth=1",    // malformed link
		"delay all prob=0.1 by=-3us",
	}
	for _, s := range bad {
		if _, err := Parse(0, s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
	// Error carries the line number.
	if _, err := Parse(0, "drop all prob=0.5\nbogus line"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("line number missing from %v", err)
	}
}

func TestDurations(t *testing.T) {
	cases := map[string]float64{"50us": 50e-6, "50µs": 50e-6, "2ms": 2e-3, "1.5s": 1.5, "100ns": 1e-7, "0.25": 0.25}
	for s, want := range cases {
		got, err := parseDuration(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
		}
		if math.Abs(got-want) > 1e-18 {
			t.Errorf("%q = %g, want %g", s, got, want)
		}
	}
}
