package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Plan from a fault schedule. One directive per line;
// blank lines and #-comments are skipped. The grammar:
//
//	drop    link=S->D nth=N [attempts=K]   drop the Nth message on the link K times
//	drop    all  prob=P [attempts=K]       drop each message with probability P
//	delay   link=S->D nth=N by=DUR         delay the Nth message by DUR
//	delay   all  prob=P by=DUR             delay random messages by DUR
//	dup     link=S->D nth=N                deliver a spurious duplicate of the Nth message
//	dup     all  prob=P                    duplicate random messages
//	degrade link=S->D factor=F             divide the link bandwidth by F (whole run)
//	degrade all  factor=F                  degrade every link
//	slow    rank=R factor=F                multiply rank R's compute time by F
//	crash   rank=R iter=N                  rank R dies at solver iteration N (one-shot)
//	ecc     rank=R launch=N                rank R's GPU takes an uncorrectable
//	                                       double-bit ECC error at kernel launch N
//
// Durations accept ns/us/µs/ms/s suffixes (bare numbers are seconds).
// nth is 1-based per link; launch and iter are 0-based, matching the
// solver's iteration counter and the device's launch counter.
func Parse(seed uint64, script string) (*Plan, error) {
	p := &Plan{
		Seed:  seed,
		crash: map[int]int{},
		ecc:   map[int]int{},
		slow:  map[int]float64{},
	}
	for ln, raw := range strings.Split(script, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.parseLine(line); err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", ln+1, err)
		}
	}
	return p, nil
}

// MustParse is Parse for programmatic schedules known to be valid.
func MustParse(seed uint64, script string) *Plan {
	p, err := Parse(seed, script)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Plan) parseLine(line string) error {
	fields := strings.Fields(line)
	kind := fields[0]
	kv := map[string]string{}
	all := false
	for _, f := range fields[1:] {
		if f == "all" {
			all = true
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("%q: want key=value", f)
		}
		kv[k] = v
	}
	getInt := func(key string) (int, bool, error) {
		s, ok := kv[key]
		if !ok {
			return 0, false, nil
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, false, fmt.Errorf("%s=%q: %w", key, s, err)
		}
		return n, true, nil
	}
	getFloat := func(key string) (float64, bool, error) {
		s, ok := kv[key]
		if !ok {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, false, fmt.Errorf("%s=%q: %w", key, s, err)
		}
		return f, true, nil
	}

	switch kind {
	case "drop", "delay", "dup", "degrade":
		r := rule{kind: kind, all: all, text: line}
		if link, ok := kv["link"]; ok {
			if all {
				return fmt.Errorf("both 'all' and link=%s", link)
			}
			var err error
			if r.src, r.dst, err = parseLink(link); err != nil {
				return err
			}
		} else if !all {
			return fmt.Errorf("%s needs link=S->D or all", kind)
		}
		if n, ok, err := getInt("nth"); err != nil {
			return err
		} else if ok {
			if n < 1 {
				return fmt.Errorf("nth=%d: 1-based", n)
			}
			r.nth = int64(n)
		}
		if f, ok, err := getFloat("prob"); err != nil {
			return err
		} else if ok {
			if f <= 0 || f > 1 {
				return fmt.Errorf("prob=%g outside (0,1]", f)
			}
			r.prob = f
		}
		if r.nth == 0 && r.prob == 0 && (kind == "drop" || kind == "delay" || kind == "dup") {
			return fmt.Errorf("%s needs nth=N or prob=P", kind)
		}
		switch kind {
		case "drop":
			r.attempts = 1
			if n, ok, err := getInt("attempts"); err != nil {
				return err
			} else if ok {
				if n < 1 {
					return fmt.Errorf("attempts=%d: must be ≥ 1", n)
				}
				r.attempts = n
			}
		case "delay":
			d, ok := kv["by"]
			if !ok {
				return fmt.Errorf("delay needs by=DUR")
			}
			var err error
			if r.delay, err = parseDuration(d); err != nil {
				return err
			}
		case "degrade":
			f, ok, err := getFloat("factor")
			if err != nil {
				return err
			}
			if !ok || f <= 1 {
				return fmt.Errorf("degrade needs factor>1, got %g", f)
			}
			r.factor = f
		}
		p.rules = append(p.rules, r)
		return nil

	case "slow", "crash", "ecc":
		rank, ok, err := getInt("rank")
		if err != nil {
			return err
		}
		if !ok || rank < 0 {
			return fmt.Errorf("%s needs rank=R", kind)
		}
		switch kind {
		case "slow":
			f, ok, err := getFloat("factor")
			if err != nil {
				return err
			}
			if !ok || f <= 1 {
				return fmt.Errorf("slow needs factor>1, got %g", f)
			}
			p.slow[rank] = f
		case "crash":
			n, ok, err := getInt("iter")
			if err != nil {
				return err
			}
			if !ok || n < 0 {
				return fmt.Errorf("crash needs iter=N")
			}
			p.crash[rank] = n
		case "ecc":
			n, ok, err := getInt("launch")
			if err != nil {
				return err
			}
			if !ok || n < 0 {
				return fmt.Errorf("ecc needs launch=N")
			}
			p.ecc[rank] = n
		}
		p.rankRuleTexts = append(p.rankRuleTexts, line)
		return nil
	}
	return fmt.Errorf("unknown directive %q", kind)
}

// parseLink parses "S->D" (also accepting "S→D").
func parseLink(s string) (src, dst int, err error) {
	a, b, ok := strings.Cut(s, "->")
	if !ok {
		a, b, ok = strings.Cut(s, "→")
	}
	if !ok {
		return 0, 0, fmt.Errorf("link=%q: want S->D", s)
	}
	if src, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("link=%q: %w", s, err)
	}
	if dst, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("link=%q: %w", s, err)
	}
	if src < 0 || dst < 0 || src == dst {
		return 0, 0, fmt.Errorf("link=%q: want two distinct ranks", s)
	}
	return src, dst, nil
}

// parseDuration parses a virtual duration with ns/us/µs/ms/s suffix;
// a bare number is seconds.
func parseDuration(s string) (float64, error) {
	mult := 1.0
	num := s
	for _, u := range []struct {
		suffix string
		mult   float64
	}{{"ns", 1e-9}, {"µs", 1e-6}, {"us", 1e-6}, {"ms", 1e-3}, {"s", 1}} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("duration %q: %w", s, err)
	}
	if f < 0 {
		return 0, fmt.Errorf("duration %q: negative", s)
	}
	return f * mult, nil
}
