// Package faults builds seeded, reproducible fault plans for the
// simulated cluster: message drops, delays, duplicates and link
// degradation injected into internal/simnet, rank crashes and
// compute slowdowns consumed by the distributed drivers, and
// uncorrectable-ECC events consumed by the internal/gpu simulator.
//
// A plan is written in a small schedule DSL (see Parse) and is
// deterministic by construction: probabilistic decisions are keyed on
// (seed, rule, src, dst, per-link sequence number) through a
// splitmix64 hash — never on wall-clock time or goroutine order — so
// the same seed reproduces the exact same fault schedule on every
// run. That is what makes chaos runs diffable: two invocations with
// one seed see identical drops, identical retries, identical crash
// points.
package faults

import (
	"sync"

	"pjds/internal/flight"
	"pjds/internal/simnet"
)

// Plan is a parsed fault schedule. It implements simnet.Injector for
// the wire-level faults; rank-level events (crash, ECC, slowdown) are
// consulted by the distributed drivers through CrashNow / ECCNow /
// SlowFactor. The zero Plan injects nothing.
type Plan struct {
	// Seed keys every probabilistic decision in the plan.
	Seed uint64

	rules []rule // wire-level rules, in script order

	crash map[int]int     // rank → solver iteration of death
	ecc   map[int]int     // rank → kernel-launch index of the ECC event
	slow  map[int]float64 // rank → compute slowdown factor
	// rankRuleTexts preserves the original crash/ecc/slow lines for
	// reporting, in script order.
	rankRuleTexts []string

	mu         sync.Mutex
	crashFired map[int]bool
	eccFired   map[int]bool
}

// rule is one wire-level line of the schedule.
type rule struct {
	kind     string // "drop", "delay", "dup", "degrade"
	all      bool   // applies to every link
	src, dst int    // the link, when !all
	nth      int64  // 1-based per-link message index (0 = unset)
	prob     float64
	attempts int     // drop: lost transmission attempts
	delay    float64 // delay: extra seconds
	factor   float64 // degrade: bandwidth divisor
	text     string  // the original line, for reporting
}

// splitmix64 is the standard 64-bit finalizer; good avalanche, no
// allocation, no shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll returns a uniform [0,1) variate fully determined by the plan
// seed, the rule index, the link, and the per-link sequence number.
func (p *Plan) roll(ruleIdx, src, dst int, seq int64) float64 {
	h := splitmix64(p.Seed ^ uint64(ruleIdx)*0xA24BAED4963EE407)
	h = splitmix64(h ^ uint64(src)<<40 ^ uint64(dst)<<20 ^ uint64(seq))
	return float64(h>>11) / (1 << 53)
}

// OnSend implements simnet.Injector: it folds every matching rule
// into one SendFault for this transmission. Deterministic in its
// arguments and the plan seed.
func (p *Plan) OnSend(src, dst, tag int, bytes int64, seq int64) simnet.SendFault {
	var f simnet.SendFault
	for i, r := range p.rules {
		if !r.all && (r.src != src || r.dst != dst) {
			continue
		}
		if r.nth > 0 {
			if seq+1 != r.nth {
				continue
			}
		} else if r.prob > 0 && p.roll(i, src, dst, seq) >= r.prob {
			continue
		}
		switch r.kind {
		case "drop":
			f.DropAttempts += r.attempts
		case "delay":
			f.ExtraDelaySeconds += r.delay
		case "dup":
			f.Duplicate = true
		case "degrade":
			if r.factor > f.BandwidthFactor {
				f.BandwidthFactor = r.factor
			}
		}
	}
	return f
}

// CrashNow reports whether rank dies at this solver iteration. The
// event is one-shot: it fires once per plan, so a recovered run that
// re-executes the iteration does not crash again. Reset re-arms it.
func (p *Plan) CrashNow(rank, iter int) bool {
	at, ok := p.crash[rank]
	if !ok || at != iter {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashFired[rank] {
		return false
	}
	if p.crashFired == nil {
		p.crashFired = map[int]bool{}
	}
	p.crashFired[rank] = true
	flight.Record(flight.Warn, "faults.crash_armed", rank, 0, "planned rank crash fired at solver iteration", float64(iter))
	return true
}

// CrashIter returns the planned crash iteration for rank, if any.
func (p *Plan) CrashIter(rank int) (int, bool) {
	at, ok := p.crash[rank]
	return at, ok
}

// ECCNow reports whether rank's device takes an uncorrectable ECC hit
// at this kernel-launch index. One-shot per rank, like CrashNow.
func (p *Plan) ECCNow(rank, launch int) bool {
	at, ok := p.ecc[rank]
	if !ok || at != launch {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.eccFired[rank] {
		return false
	}
	if p.eccFired == nil {
		p.eccFired = map[int]bool{}
	}
	p.eccFired[rank] = true
	flight.Record(flight.Warn, "faults.ecc_armed", rank, 0, "planned ECC hit fired at kernel launch", float64(launch))
	return true
}

// SlowFactor returns the compute-slowdown multiplier for rank (1 when
// the plan leaves it at full speed).
func (p *Plan) SlowFactor(rank int) float64 {
	if f, ok := p.slow[rank]; ok && f > 0 {
		return f
	}
	return 1
}

// Reset re-arms the one-shot rank events, so the identical schedule
// replays in a second run of the same process (reproducibility
// checks).
func (p *Plan) Reset() {
	p.mu.Lock()
	p.crashFired = nil
	p.eccFired = nil
	p.mu.Unlock()
}

// Rules returns the original script lines in order, for reporting.
func (p *Plan) Rules() []string {
	out := make([]string, 0, len(p.rules)+len(p.crash)+len(p.ecc)+len(p.slow))
	for _, r := range p.rules {
		out = append(out, r.text)
	}
	for _, t := range p.rankRuleTexts {
		out = append(out, t)
	}
	return out
}

// DeviceInjector adapts the plan to the internal/gpu fault hook for
// one rank: it counts that rank's kernel launches and fires the
// planned ECC event at the configured launch index.
type DeviceInjector struct {
	p      *Plan
	rank   int
	mu     sync.Mutex
	launch int
}

// DeviceFor returns the per-rank device-fault adapter (satisfies
// gpu.ECCInjector). Each call returns a fresh launch counter.
func (p *Plan) DeviceFor(rank int) *DeviceInjector {
	return &DeviceInjector{p: p, rank: rank}
}

// ECCEvent implements the gpu fault hook: called once per kernel
// launch, it reports whether this launch takes the planned
// uncorrectable double-bit ECC error.
func (d *DeviceInjector) ECCEvent(kernel string) bool {
	d.mu.Lock()
	l := d.launch
	d.launch++
	d.mu.Unlock()
	return d.p.ECCNow(d.rank, l)
}
