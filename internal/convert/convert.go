// Package convert is the conversion-cost accounting layer of the
// ingest-and-convert pipeline. The paper (§II-C) weighs a format's
// conversion time in units of spMVM kernel invocations: a format pays
// off once its per-iteration gain has amortized the one-time
// conversion cost. This package measures the conversion phases
// (matrix.PhaseTimer implementation backed by wall-clock time), feeds
// them into the telemetry registry and span log on a dedicated
// "convert" lane, and computes the amortization quantities the
// perfreport CLI prints.
package convert

import (
	"math"
	"time"

	"pjds/internal/profiles"
	"pjds/internal/telemetry"
)

// PhaseSeconds is one named conversion phase with its accumulated
// wall-clock duration.
type PhaseSeconds struct {
	Name    string
	Seconds float64
	Count   int
}

// Recorder implements matrix.PhaseTimer with wall-clock timing. Every
// phase is mirrored three ways: an internal list (Phases, for direct
// reporting), counters convert_phase_seconds_total /
// convert_phases_total{phase=...} in a telemetry Registry, and a Span
// on the "convert" lane of a SpanLog (span times are offsets from the
// recorder's creation, so conversion traces align at zero like the
// simulator's virtual clocks).
//
// A Recorder is not safe for concurrent Phase calls; the conversion
// pipeline opens phases only from the coordinating goroutine.
type Recorder struct {
	reg   *telemetry.Registry
	spans *telemetry.SpanLog
	proc  int
	now   func() time.Time // injectable for tests
	t0    time.Time

	names []string
	byN   map[string]*PhaseSeconds
}

// NewRecorder returns a Recorder reporting into reg (nil selects the
// process-default registry) and, when spans is non-nil, logging one
// span per phase under the given proc id.
func NewRecorder(reg *telemetry.Registry, spans *telemetry.SpanLog, proc int) *Recorder {
	// A Recorder marks the start of a conversion pipeline: label the
	// coordinating goroutine (workers it spawns inherit the label).
	profiles.SetPhase(profiles.PhaseConvert)
	if reg == nil {
		reg = telemetry.Default()
	}
	r := &Recorder{
		reg:   reg,
		spans: spans,
		proc:  proc,
		now:   time.Now,
		byN:   map[string]*PhaseSeconds{},
	}
	r.t0 = r.now()
	r.reg.Help("convert_phase_seconds_total", "Wall-clock seconds spent in each conversion phase.")
	r.reg.Help("convert_phases_total", "Number of times each conversion phase ran.")
	return r
}

// SetClock replaces the wall clock (tests only). It also rebases t0.
func (r *Recorder) SetClock(now func() time.Time) {
	r.now = now
	r.t0 = now()
}

// Phase implements matrix.PhaseTimer.
func (r *Recorder) Phase(name string) func() {
	start := r.now()
	return func() {
		end := r.now()
		sec := end.Sub(start).Seconds()
		p := r.byN[name]
		if p == nil {
			p = &PhaseSeconds{Name: name}
			r.byN[name] = p
			r.names = append(r.names, name)
		}
		p.Seconds += sec
		p.Count++
		r.reg.Counter("convert_phase_seconds_total", telemetry.L("phase", name)).Add(sec)
		r.reg.Counter("convert_phases_total", telemetry.L("phase", name)).Inc()
		if r.spans != nil {
			r.spans.Add(telemetry.Span{
				Proc:  r.proc,
				Lane:  "convert",
				Cat:   "convert",
				Name:  name,
				Start: start.Sub(r.t0).Seconds(),
				End:   end.Sub(r.t0).Seconds(),
			})
		}
	}
}

// Phases returns the recorded phases, merged by name in first-seen
// order.
func (r *Recorder) Phases() []PhaseSeconds {
	out := make([]PhaseSeconds, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, *r.byN[n])
	}
	return out
}

// TotalSeconds returns the summed duration of all phases.
func (r *Recorder) TotalSeconds() float64 {
	var s float64
	for _, n := range r.names {
		s += r.byN[n].Seconds
	}
	return s
}

// Amortization expresses a conversion cost in the paper's §II-C
// currency: how many spMVM kernel invocations the conversion is worth,
// and after how many spMVMs a faster format has paid for itself.
type Amortization struct {
	// ConvertSeconds is the one-time conversion cost.
	ConvertSeconds float64
	// SpMVSeconds is the modeled time of one spMVM in the target format.
	SpMVSeconds float64
	// Equivalents = ConvertSeconds / SpMVSeconds: the conversion cost
	// expressed in spMVM invocations.
	Equivalents float64
	// GainSeconds is the per-spMVM time saved over the baseline format.
	GainSeconds float64
	// BreakEvenSpMVMs = ConvertSeconds / GainSeconds: the iteration
	// count beyond which converting was worth it. +Inf when the target
	// format is no faster than the baseline.
	BreakEvenSpMVMs float64
}

// Amortize computes the amortization quantities. spmvSeconds ≤ 0
// yields zero Equivalents; gainSeconds ≤ 0 yields an infinite
// break-even (converting never pays off).
func Amortize(convertSeconds, spmvSeconds, gainSeconds float64) Amortization {
	a := Amortization{
		ConvertSeconds: convertSeconds,
		SpMVSeconds:    spmvSeconds,
		GainSeconds:    gainSeconds,
	}
	if spmvSeconds > 0 {
		a.Equivalents = convertSeconds / spmvSeconds
	}
	if gainSeconds > 0 {
		a.BreakEvenSpMVMs = convertSeconds / gainSeconds
	} else {
		a.BreakEvenSpMVMs = math.Inf(1)
	}
	return a
}
