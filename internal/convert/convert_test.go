package convert

import (
	"math"
	"testing"
	"time"

	"pjds/internal/telemetry"
)

// fakeClock advances a fixed step on every reading, making phase
// durations deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newTestRecorder(step time.Duration, spans *telemetry.SpanLog) (*Recorder, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	r := NewRecorder(reg, spans, 3)
	c := &fakeClock{t: time.Unix(1000, 0), step: step}
	r.SetClock(c.now)
	return r, reg
}

func TestRecorderPhases(t *testing.T) {
	spans := telemetry.NewSpanLog()
	r, reg := newTestRecorder(time.Second, spans)

	r.Phase("a")() // 1s
	r.Phase("b")() // 1s
	r.Phase("a")() // merged into a: 2s total, count 2

	ps := r.Phases()
	if len(ps) != 2 || ps[0].Name != "a" || ps[1].Name != "b" {
		t.Fatalf("phases not merged in first-seen order: %+v", ps)
	}
	if ps[0].Seconds != 2 || ps[0].Count != 2 || ps[1].Seconds != 1 || ps[1].Count != 1 {
		t.Fatalf("accumulation wrong: %+v", ps)
	}
	if got := r.TotalSeconds(); got != 3 {
		t.Fatalf("TotalSeconds = %v, want 3", got)
	}

	// Counters mirror the phase list.
	if v := reg.Counter("convert_phase_seconds_total", telemetry.L("phase", "a")).Value(); v != 2 {
		t.Fatalf("seconds counter a = %v, want 2", v)
	}
	if v := reg.Counter("convert_phases_total", telemetry.L("phase", "b")).Value(); v != 1 {
		t.Fatalf("count counter b = %v, want 1", v)
	}

	// One span per Phase call on the convert lane, offset from t0.
	ss := spans.Spans()
	if len(ss) != 3 {
		t.Fatalf("got %d spans, want 3", len(ss))
	}
	for _, s := range ss {
		if s.Lane != "convert" || s.Cat != "convert" || s.Proc != 3 {
			t.Fatalf("span metadata wrong: %+v", s)
		}
		if s.End-s.Start != 1 {
			t.Fatalf("span duration %v, want 1s: %+v", s.End-s.Start, s)
		}
	}
	if ss[0].Name != "a" || ss[0].Start != 1 {
		t.Fatalf("first span not offset from t0: %+v", ss[0])
	}
}

func TestRecorderNilRegistryAndSpans(t *testing.T) {
	// nil registry selects the process default; nil spans disables
	// span logging — neither may panic.
	r := NewRecorder(nil, nil, 0)
	r.Phase("x")()
	if len(r.Phases()) != 1 {
		t.Fatal("phase not recorded")
	}
}

func TestAmortize(t *testing.T) {
	a := Amortize(10, 0.5, 0.1)
	if a.Equivalents != 20 {
		t.Fatalf("Equivalents = %v, want 20", a.Equivalents)
	}
	if a.BreakEvenSpMVMs != 100 {
		t.Fatalf("BreakEvenSpMVMs = %v, want 100", a.BreakEvenSpMVMs)
	}

	// A format that is no faster than the baseline never pays off.
	never := Amortize(10, 0.5, 0)
	if !math.IsInf(never.BreakEvenSpMVMs, 1) {
		t.Fatalf("gain=0 break-even = %v, want +Inf", never.BreakEvenSpMVMs)
	}
	slower := Amortize(10, 0.5, -0.2)
	if !math.IsInf(slower.BreakEvenSpMVMs, 1) {
		t.Fatalf("negative gain break-even = %v, want +Inf", slower.BreakEvenSpMVMs)
	}

	// Degenerate spMVM time yields zero equivalents, not NaN/Inf.
	z := Amortize(10, 0, 0.1)
	if z.Equivalents != 0 {
		t.Fatalf("spmv=0 Equivalents = %v, want 0", z.Equivalents)
	}
}
