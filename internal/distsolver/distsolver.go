// Package distsolver turns the distributed spMVM of internal/distmv
// into reusable iterative solvers — the "application of our results to
// a production-grade eigensolver" of the paper's outlook. Each rank
// owns a contiguous row block; a Halo engine exchanges the remote RHS
// elements every iteration (the iterate changes, unlike the fixed-x
// benchmark loop), reductions run over the virtual-time collectives,
// and results are bit-comparable to the serial solvers.
package distsolver

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"pjds/internal/distmv"
	"pjds/internal/flight"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/hostkernel"
	"pjds/internal/mpi"
	"pjds/internal/telemetry"
)

// Halo is one rank's reusable halo-exchange engine. Exchange sends the
// locally-owned x elements its neighbours need and fills the halo
// buffer with theirs, charging the rank's virtual clock for gather,
// injection and arrival times.
type Halo struct {
	rp   *distmv.RankProblem
	c    *mpi.Comm
	buf  []float64
	tick int
	// GatherBW models the host-side pack of send buffers (B/s).
	GatherBW float64
}

// NewHalo builds the engine for one rank.
func NewHalo(rp *distmv.RankProblem, c *mpi.Comm) *Halo {
	return &Halo{
		rp:       rp,
		c:        c,
		buf:      make([]float64, rp.HaloSize()),
		GatherBW: 8e9,
	}
}

// Exchange distributes x (this rank's owned elements) and returns the
// filled halo buffer, valid until the next call.
func (h *Halo) Exchange(x []float64) ([]float64, error) {
	rp, c := h.rp, h.c
	if len(x) != rp.LocalRows() {
		return nil, fmt.Errorf("distsolver: rank %d Exchange |x|=%d, own %d rows", rp.Rank, len(x), rp.LocalRows())
	}
	tag := h.tick
	h.tick++
	c.Advance(float64(8*rp.SendElems()) / h.GatherBW)
	var recvs, all []*mpi.Request
	for o := 0; o < rp.P; o++ {
		if _, ok := rp.RecvCount[o]; ok {
			r := c.Irecv(o, tag)
			recvs = append(recvs, r)
			all = append(all, r)
		}
	}
	for d := 0; d < rp.P; d++ {
		idx, ok := rp.SendIdx[d]
		if !ok {
			continue
		}
		buf := make([]float64, len(idx))
		for k, i := range idx {
			buf[k] = x[i]
		}
		all = append(all, c.Isend(d, tag, buf, int64(8*len(buf))))
	}
	if err := c.Waitall(all); err != nil {
		return nil, err
	}
	for _, r := range recvs {
		vals, ok := r.Message.Payload.([]float64)
		if !ok {
			return nil, fmt.Errorf("distsolver: rank %d got %T from %d", rp.Rank, r.Message.Payload, r.Message.Src)
		}
		// Verify the received element count against the partition's
		// expected halo size before copying: a short (or oversized)
		// message would otherwise silently corrupt neighbouring halo
		// segments.
		if want := rp.RecvCount[r.Message.Src]; len(vals) != want {
			return nil, &HaloSizeError{Rank: rp.Rank, Src: r.Message.Src, GotElems: len(vals), WantElems: want}
		}
		copy(h.buf[rp.HaloOffset[r.Message.Src]:], vals)
	}
	return h.buf, nil
}

// HaloSizeError reports a halo message whose element count does not
// match the partition's expected size for that link.
type HaloSizeError struct {
	Rank, Src           int
	GotElems, WantElems int
}

func (e *HaloSizeError) Error() string {
	return fmt.Sprintf("distsolver: rank %d halo from %d carries %d elements, partition expects %d",
		e.Rank, e.Src, e.GotElems, e.WantElems)
}

// Operator applies the distributed matrix: y = A_loc·x + A_nl·halo(x),
// with one halo exchange per application. Kernel time is charged to
// the rank clock with a simple bytes/bandwidth model of the host
// kernels; UseDevice switches to the GPU simulator's transaction-level
// timing instead (what internal/distmv measures for the fixed-x
// benchmark loop).
type Operator struct {
	RP   *distmv.RankProblem
	Halo *Halo
	c    *mpi.Comm
	// KernelBW is the modelled spMVM memory bandwidth (B/s) used to
	// advance the virtual clock per application; 0 disables timing.
	// Ignored once UseDevice is called.
	KernelBW float64
	// Inst (optional) records each application's halo exchange and
	// spMVM as spans on the rank's solver lane.
	Inst    *Instrument
	applies int

	// Faults (optional) injects simulated uncorrectable ECC events into
	// the device kernels. When one fires, the operator latches Degraded
	// and every application from then on runs the host CPU kernels
	// instead — bit-identically, since both paths sum each row in
	// stored column order. Only the timing model changes.
	Faults gpu.ECCInjector
	// Slow is a compute-slowdown multiplier applied to every kernel
	// charge on the rank clock (0 or 1 = full speed). The recovery
	// driver sets it > 1 for logical ranks re-hosted on a surviving
	// node, where they share that node's device and memory bandwidth.
	Slow float64
	// Degraded reports that an ECC event evicted this rank from its
	// device; DegradedAt is the Apply index that took the hit.
	Degraded   bool
	DegradedAt int

	// Device state, set by UseDevice: the ELLPACK-R forms of the local
	// and non-local blocks are built once per solve, so every Apply
	// after the first replays cached kernel plans.
	dev         *gpu.Device
	devLocal    *formats.ELLPACKR[float64]
	devNonLocal *formats.ELLPACKR[float64]
	devWorkers  int

	// Host kernels for the split application, built lazily on the first
	// host-path Apply (pure host runs and the ECC downgrade path) from
	// the process-default hostkernel kind. Workers is pinned to 1:
	// ranks are already process-parallel, so intra-rank worker pools
	// would only oversubscribe the node.
	hostLocal    hostkernel.Kernel
	hostNonLocal hostkernel.Kernel
}

// UseDevice routes every subsequent Apply through the GPU simulator on
// dev: the local kernel computes y = A_loc·x, the non-local kernel
// accumulates y += A_nl·halo (adding the LHS read traffic of §III-A),
// and the rank clock advances by the simulated kernel times. The
// numeric result is bit-identical to the host path — both sum each row
// in stored column order.
func (op *Operator) UseDevice(dev *gpu.Device, workers int) error {
	if err := dev.Validate(); err != nil {
		return err
	}
	op.dev = dev
	op.devWorkers = workers
	op.devLocal = formats.NewELLPACKR(op.RP.Local)
	op.devNonLocal = formats.NewELLPACKR(op.RP.NonLocal)
	return nil
}

// slow resolves the compute-slowdown multiplier (identity when unset).
func (op *Operator) slow() float64 {
	if op.Slow > 1 {
		return op.Slow
	}
	return 1
}

// degrade latches the host fallback after an uncorrectable ECC event
// and records the eviction for telemetry.
func (op *Operator) degrade(at int) {
	op.Degraded = true
	op.DegradedAt = at
	op.Inst.registry().Counter("distsolver_ecc_downgrades_total",
		telemetry.Li("rank", op.RP.Rank)).Inc()
	flight.Record(flight.Error, "solver.ecc_downgrade", op.RP.Rank, 0, "operator degraded to host path after ECC event", float64(at))
}

// deviceMul runs the split kernels on the simulator and advances the
// rank clock by their simulated duration. An uncorrectable ECC event
// in either kernel degrades the operator to the host path for this
// and every following application; because y may hold a partial
// result from the local kernel, the host fallback recomputes the full
// application from scratch.
func (op *Operator) deviceMul(y, x, halo []float64) error {
	var reg *telemetry.Registry
	if op.Inst != nil {
		reg = op.Inst.Metrics
	}
	opt := func(phase string, acc bool) gpu.RunOptions {
		return gpu.RunOptions{
			Accumulate: acc,
			Workers:    op.devWorkers,
			Metrics:    reg,
			Faults:     op.Faults,
			MetricLabels: []telemetry.Label{
				telemetry.Li("rank", op.RP.Rank),
				telemetry.L("phase", phase),
			},
		}
	}
	var ecc *gpu.ECCError
	stL, err := gpu.RunELLPACKR(op.dev, op.devLocal, y, x, opt("solver-local", false))
	if errors.As(err, &ecc) {
		op.degrade(op.applies - 1)
		return op.hostMul(y, x, halo)
	}
	if err != nil {
		return err
	}
	stN, err := gpu.RunELLPACKR(op.dev, op.devNonLocal, y, halo, opt("solver-non-local", true))
	if errors.As(err, &ecc) {
		op.degrade(op.applies - 1)
		return op.hostMul(y, x, halo)
	}
	if err != nil {
		return err
	}
	op.c.Advance(op.slow() * (stL.KernelSeconds + stN.KernelSeconds))
	return nil
}

// hostMul runs the split application on the blocked hostkernel CRS
// kernels (y = A_loc·x, then y += A_nl·halo, bit-identical to the
// naive split), charging the bytes/bandwidth timing model.
func (op *Operator) hostMul(y, x, halo []float64) error {
	if op.hostLocal == nil {
		opt := hostkernel.Options{Workers: 1}
		kind := hostkernel.DefaultKind()
		local, err := hostkernel.New(kind, op.RP.Local, opt)
		if err != nil {
			return err
		}
		nonLocal, err := hostkernel.New(kind, op.RP.NonLocal, opt)
		if err != nil {
			local.Close()
			return err
		}
		op.hostLocal, op.hostNonLocal = local, nonLocal
	}
	if err := op.hostLocal.MulVec(y, x); err != nil {
		return err
	}
	if err := op.hostNonLocal.MulVecAdd(y, halo); err != nil {
		return err
	}
	if op.KernelBW > 0 {
		bytes := float64(12 * (op.RP.Local.Nnz() + op.RP.NonLocal.Nnz()))
		op.c.Advance(op.slow() * bytes / op.KernelBW)
	}
	return nil
}

// NewOperator builds the distributed operator for one rank.
func NewOperator(rp *distmv.RankProblem, c *mpi.Comm) *Operator {
	return &Operator{RP: rp, Halo: NewHalo(rp, c), c: c, KernelBW: 20e9}
}

// Dim returns the number of locally owned rows.
func (op *Operator) Dim() int { return op.RP.LocalRows() }

// Apply computes the local slice of y = A·x.
func (op *Operator) Apply(y, x []float64) error {
	n := op.applies
	op.applies++
	var halo []float64
	err := op.Inst.spanned(op.c, op.RP.Rank, "comm", "halo exchange", n, func() (err error) {
		halo, err = op.Halo.Exchange(x)
		return err
	}, "send_bytes", strconv.Itoa(8*op.RP.SendElems()),
		"recv_bytes", strconv.Itoa(8*op.RP.HaloSize()))
	if err != nil {
		return err
	}
	return op.Inst.spanned(op.c, op.RP.Rank, "gpu", "spMVM", n, func() error {
		if op.dev != nil && !op.Degraded {
			return op.deviceMul(y, x, halo)
		}
		return op.hostMul(y, x, halo)
	})
}

// Dot returns the global dot product of two distributed vectors.
func Dot(c *mpi.Comm, x, y []float64) (float64, error) {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return c.AllreduceSum(s)
}

// Norm2 returns the global 2-norm of a distributed vector.
func Norm2(c *mpi.Comm, x []float64) (float64, error) {
	d, err := Dot(c, x, x)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}
