package distsolver

import (
	"strconv"

	"pjds/internal/gpu"
	"pjds/internal/mpi"
	"pjds/internal/telemetry"
)

// Instrument attaches telemetry to a distributed solve: convergence
// gauges go to Metrics (nil selects telemetry.Default()), and
// per-exchange / per-iteration spans to Spans (nil disables them).
// All series carry a rank label, so concurrent rank goroutines never
// share a gauge series and output stays deterministic.
type Instrument struct {
	Metrics *telemetry.Registry
	Spans   *telemetry.SpanLog
	// Device (optional) switches the solve's spMVM from the host
	// bytes/bandwidth model to the GPU simulator: the operator builds
	// ELLPACK-R device formats once per solve and each application
	// charges the simulated local+non-local kernel time to the rank
	// clock. Results stay bit-identical to the host path (the device
	// kernel sums each row in CSR order).
	Device *gpu.Device
	// Workers is passed through to the simulated kernels
	// (gpu.RunOptions.Workers); 0 selects the gpu package default.
	Workers int
}

// registry resolves the target registry (Default when unset).
func (in *Instrument) registry() *telemetry.Registry {
	if in == nil || in.Metrics == nil {
		return telemetry.Default()
	}
	return in.Metrics
}

// emit records one span on the rank's solver lane.
func (in *Instrument) emit(rank int, cat, name string, start, end float64, args map[string]string) {
	if in == nil || in.Spans == nil {
		return
	}
	in.Spans.Add(telemetry.Span{
		Proc: rank, Lane: "solver", Cat: cat, Name: name,
		Start: start, End: end, Args: args,
	})
}

// spanned runs f and logs its virtual duration on c's clock. kv holds
// optional extra span args as key/value pairs (e.g. exchange byte
// counts), so reports can attribute cost without re-deriving it.
func (in *Instrument) spanned(c *mpi.Comm, rank int, cat, name string, iter int, f func() error, kv ...string) error {
	start := c.Clock()
	err := f()
	if in != nil && in.Spans != nil {
		args := map[string]string{"iteration": strconv.Itoa(iter)}
		for i := 0; i+1 < len(kv); i += 2 {
			args[kv[i]] = kv[i+1]
		}
		in.emit(rank, cat, name, start, c.Clock(), args)
	}
	return err
}

// firstInstrument picks the effective instrument from a variadic tail.
func firstInstrument(inst []*Instrument) *Instrument {
	for _, in := range inst {
		if in != nil {
			return in
		}
	}
	return nil
}
