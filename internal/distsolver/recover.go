package distsolver

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"

	"pjds/internal/distmv"
	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/mpi"
	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

// FaultSchedule is the slice of a fault plan the recovery driver
// consults directly: scheduled rank crashes (consumed one-shot, so a
// replayed iteration does not crash twice) and per-rank compute
// slowdowns. internal/faults.Plan implements it.
type FaultSchedule interface {
	// CrashNow reports whether rank should crash at the top of solver
	// iteration iter; a true return is consumed.
	CrashNow(rank, iter int) bool
	// SlowFactor returns the compute slowdown of rank (1 = full speed).
	SlowFactor(rank int) float64
}

// RecoverConfig parameterizes RecoverableCG.
type RecoverConfig struct {
	// Tol and MaxIter are the CG convergence controls.
	Tol     float64
	MaxIter int
	// CheckpointEvery commits an in-memory checkpoint of the solver
	// vectors every that many iterations (0 selects 10, negative
	// disables checkpointing — every rollback restarts from scratch).
	CheckpointEvery int
	// MaxRestarts bounds rollback-restart attempts (0 selects 3).
	MaxRestarts int
	// Schedule (optional) injects iteration-indexed rank crashes and
	// per-rank slowdowns.
	Schedule FaultSchedule
	// DeviceFaults (optional) supplies the per-rank ECC injector wired
	// into the operator's device kernels.
	DeviceFaults func(rank int) gpu.ECCInjector
	// Wire, Retry and HeartbeatSeconds are passed to the message layer:
	// wire-level fault injection, the reliable-transport retry policy,
	// and the failure-detector period.
	Wire             simnet.Injector
	Retry            mpi.RetryPolicy
	HeartbeatSeconds float64
	// RehostSlowdown is the compute-slowdown multiplier applied to a
	// logical rank re-hosted on a surviving node after its own node
	// crashed — and to the rank whose node takes it in, since the two
	// now share one device. 0 selects 2. Timing-only: keeping all P
	// logical ranks alive preserves the partition and the reduction
	// order, which is what makes recovered solves bit-identical.
	RehostSlowdown float64
	// RestartSeconds is the modelled rollback overhead charged between
	// a detected failure and the relaunched attempt (0 selects 500µs).
	RestartSeconds float64
	// Inst carries telemetry (metrics, spans, optional device routing)
	// exactly as for CG.
	Inst *Instrument
}

func (cfg *RecoverConfig) every() int {
	if cfg.CheckpointEvery == 0 {
		return 10
	}
	return cfg.CheckpointEvery
}

func (cfg *RecoverConfig) maxRestarts() int {
	if cfg.MaxRestarts == 0 {
		return 3
	}
	return cfg.MaxRestarts
}

func (cfg *RecoverConfig) rehost() float64 {
	if cfg.RehostSlowdown <= 0 {
		return 2
	}
	return cfg.RehostSlowdown
}

func (cfg *RecoverConfig) restartSeconds() float64 {
	if cfg.RestartSeconds <= 0 {
		return 500e-6
	}
	return cfg.RestartSeconds
}

// RecoverResult reports a fault-tolerant distributed CG solve.
type RecoverResult struct {
	CG CGResult
	// Restarts counts rollback-restart cycles; Checkpoints counts
	// committed checkpoints across all attempts.
	Restarts    int
	Checkpoints int
	// Failures records the root-cause error text of every aborted
	// attempt, in order.
	Failures []string
	// DeadRanks lists logical ranks whose node crashed; HostOf maps
	// every logical rank to the physical node running it (identity for
	// survivors).
	DeadRanks []int
	HostOf    []int
	// DegradedRanks lists ranks that lost their device to an ECC event
	// and finished on the host kernels.
	DegradedRanks []int
	// RecoverySeconds is the modelled virtual time spent in rollback
	// overhead (restart windows, not the replayed iterations).
	RecoverySeconds float64
	// Clocks holds the per-rank virtual clocks of the final attempt.
	Clocks []float64
}

// checkpoint is one committed in-memory snapshot of the global CG
// state: everything a relaunched attempt needs to replay the exact
// floating-point trajectory from iteration iter onwards.
type checkpoint struct {
	iter      int
	rr, bnorm float64
	x, r, p   []float64
	clock     float64
}

// ckptPart is one rank's contribution to a checkpoint.
type ckptPart struct {
	lo, hi  int
	x, r, p []float64
}

func cloneVec(v []float64) []float64 { return append([]float64(nil), v...) }

// RecoverableCG solves A·x = b with CG under injected faults: wire
// faults ride the message layer's reliable transport, scheduled rank
// crashes abort the attempt and trigger rollback to the last committed
// checkpoint with the dead rank re-hosted on a survivor, and ECC
// events degrade individual ranks from device to host execution
// mid-flight. b and the optional x0 are global vectors (length
// GlobalN); the returned vector is the assembled global solution.
// Because every recovery path replays the identical floating-point
// sequence, the result is bit-identical to a fault-free run.
func RecoverableCG(fabric *simnet.Fabric, problems []*distmv.RankProblem, b, x0 []float64, cfg RecoverConfig) (*RecoverResult, []float64, error) {
	if len(problems) == 0 {
		return nil, nil, fmt.Errorf("distsolver: RecoverableCG with no rank problems")
	}
	p := problems[0].P
	n := problems[0].GlobalN
	if len(b) != n {
		return nil, nil, fmt.Errorf("distsolver: RecoverableCG |b|=%d, global size %d", len(b), n)
	}
	if x0 != nil && len(x0) != n {
		return nil, nil, fmt.Errorf("distsolver: RecoverableCG |x0|=%d, global size %d", len(x0), n)
	}
	in := cfg.Inst
	reg := in.registry()
	reg.Help("distsolver_checkpoints_total", "committed in-memory solver checkpoints")
	reg.Help("distsolver_rollbacks_total", "rollback-restart cycles after detected failures")
	reg.Help("distsolver_rehosted_ranks_total", "logical ranks re-hosted on a surviving node")
	reg.Help("distsolver_recovery_seconds_total", "modelled virtual time spent in rollback overhead")

	res := &RecoverResult{HostOf: make([]int, p)}
	for i := range res.HostOf {
		res.HostOf[i] = i
	}
	dead := make([]bool, p)
	degraded := make([]bool, p)
	xOut := make([]float64, n)

	var mu sync.Mutex // guards ckpt and final across rank goroutines
	var ckpt *checkpoint
	var final CGResult
	resumeBase := 0.0 // virtual-clock floor of the next attempt
	failAt := 0.0     // detection time of the previous attempt's failure

	slowFor := func(rank int) float64 {
		s := 1.0
		if cfg.Schedule != nil {
			s = cfg.Schedule.SlowFactor(rank)
		}
		if dead[rank] {
			return s * cfg.rehost()
		}
		for f, d := range dead {
			if d && res.HostOf[f] == rank {
				return s * cfg.rehost()
			}
		}
		return s
	}

	attempt := 0
	for {
		start := ckpt // committed snapshot this attempt resumes from
		base := resumeBase
		rollFrom := failAt
		att := attempt
		body := func(c *mpi.Comm) error {
			rank := c.Rank()
			rp := problems[rank]
			nloc := rp.LocalRows()
			if att > 0 {
				// Virtual-clock continuity across attempts: the relaunch
				// starts where the failed attempt's detection left off,
				// plus the modelled restart overhead.
				c.Advance(base)
				if in != nil && in.Spans != nil {
					in.Spans.Add(telemetry.Span{
						Proc: rank, Lane: "recovery", Cat: "recovery", Name: "rollback",
						Start: rollFrom, End: c.Clock(),
						Args: map[string]string{"attempt": strconv.Itoa(att)},
					})
				}
			}
			op := NewOperator(rp, c)
			op.Inst = in
			op.Slow = slowFor(rank)
			if in != nil && in.Device != nil {
				if err := op.UseDevice(in.Device, in.Workers); err != nil {
					return err
				}
			}
			if cfg.DeviceFaults != nil {
				op.Faults = cfg.DeviceFaults(rank)
			}
			defer func() {
				if op.Degraded {
					degraded[rank] = true // own slot only: no write overlap
				}
			}()

			x := make([]float64, nloc)
			r := make([]float64, nloc)
			pv := make([]float64, nloc)
			ap := make([]float64, nloc)
			var rr, bnorm float64
			startIter := 0
			if start != nil {
				// Restore from the checkpoint: modelled cost of reading the
				// three vectors back, then the exact saved state.
				c.Advance(c.Fabric().TransferSeconds(int64(3 * 8 * nloc)))
				copy(x, start.x[rp.RowLo:rp.RowHi])
				copy(r, start.r[rp.RowLo:rp.RowHi])
				copy(pv, start.p[rp.RowLo:rp.RowHi])
				rr, bnorm, startIter = start.rr, start.bnorm, start.iter
			} else {
				if x0 != nil {
					copy(x, x0[rp.RowLo:rp.RowHi])
				}
				bloc := b[rp.RowLo:rp.RowHi]
				if err := op.Apply(r, x); err != nil {
					return err
				}
				for i := range r {
					r[i] = bloc[i] - r[i]
				}
				copy(pv, r)
				var err error
				if rr, err = Dot(c, r, r); err != nil {
					return err
				}
				if bnorm, err = Norm2(c, bloc); err != nil {
					return err
				}
				if bnorm == 0 {
					bnorm = 1
				}
			}

			commit := func(k int) error {
				t0 := c.Clock()
				// Modelled cost of shipping the three vectors to the
				// in-memory checkpoint store, then a barrier so every rank
				// commits the same snapshot at a synchronized clock.
				c.Advance(c.Fabric().TransferSeconds(int64(3 * 8 * nloc)))
				parts, err := c.AllgatherUntimed(ckptPart{
					lo: rp.RowLo, hi: rp.RowHi,
					x: cloneVec(x), r: cloneVec(r), p: cloneVec(pv),
				})
				if err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if rank == 0 {
					nc := &checkpoint{
						iter: k, rr: rr, bnorm: bnorm, clock: c.Clock(),
						x: make([]float64, n), r: make([]float64, n), p: make([]float64, n),
					}
					for _, raw := range parts {
						cp := raw.(ckptPart)
						copy(nc.x[cp.lo:cp.hi], cp.x)
						copy(nc.r[cp.lo:cp.hi], cp.r)
						copy(nc.p[cp.lo:cp.hi], cp.p)
					}
					mu.Lock()
					ckpt = nc
					res.Checkpoints++
					mu.Unlock()
					reg.Counter("distsolver_checkpoints_total").Inc()
					flight.Record(flight.Info, "solver.checkpoint", rank, c.Clock(), "committed in-memory solver checkpoint", float64(k))
				}
				if in != nil && in.Spans != nil {
					in.Spans.Add(telemetry.Span{
						Proc: rank, Lane: "recovery", Cat: "recovery", Name: "checkpoint",
						Start: t0, End: c.Clock(),
						Args: map[string]string{"iteration": strconv.Itoa(k)},
					})
				}
				return nil
			}

			finish := func(iters int, rr float64) {
				copy(xOut[rp.RowLo:rp.RowHi], x) // disjoint row blocks
				if rank == 0 {
					mu.Lock()
					final = CGResult{Iterations: iters, Residual: math.Sqrt(rr)}
					mu.Unlock()
				}
			}

			every := cfg.every()
			for k := startIter; k < cfg.MaxIter; k++ {
				if math.Sqrt(rr) <= cfg.Tol*bnorm {
					finish(k, rr)
					return nil
				}
				if every > 0 && k > startIter && k%every == 0 {
					if err := commit(k); err != nil {
						return err
					}
				}
				if cfg.Schedule != nil && cfg.Schedule.CrashNow(rank, k) {
					return c.Crash()
				}
				t0 := c.Clock()
				if err := op.Apply(ap, pv); err != nil {
					return err
				}
				pap, err := Dot(c, pv, ap)
				if err != nil {
					return err
				}
				if pap <= 0 {
					return fmt.Errorf("distsolver: operator not positive definite (pᵀAp = %g)", pap)
				}
				alpha := rr / pap
				for i := range x {
					x[i] += alpha * pv[i]
					r[i] -= alpha * ap[i]
				}
				rrNew, err := Dot(c, r, r)
				if err != nil {
					return err
				}
				beta := rrNew / rr
				for i := range pv {
					pv[i] = r[i] + beta*pv[i]
				}
				rr = rrNew
				in.emit(rank, "solver", "CG iteration", t0, c.Clock(),
					map[string]string{"iteration": strconv.Itoa(k + 1)})
			}
			finish(cfg.MaxIter, rr)
			return fmt.Errorf("%w: residual %g after %d iterations",
				ErrNotConverged, math.Sqrt(rr), cfg.MaxIter)
		}

		var opts mpi.Options
		opts.Faults = cfg.Wire
		opts.Retry = cfg.Retry
		opts.HeartbeatSeconds = cfg.HeartbeatSeconds
		if in != nil {
			opts.Metrics = in.Metrics
			opts.Spans = in.Spans
		}
		clocks, err := mpi.RunWithOptions(p, fabric, opts, body)
		res.Clocks = clocks
		if err == nil {
			res.CG = final
			res.DegradedRanks = res.DegradedRanks[:0]
			for rank, d := range degraded {
				if d {
					res.DegradedRanks = append(res.DegradedRanks, rank)
				}
			}
			return res, xOut, nil
		}
		res.Failures = append(res.Failures, err.Error())

		var rf *mpi.RankFailedError
		var rx *mpi.RetriesExhaustedError
		switch {
		case errors.As(err, &rf):
			if !dead[rf.Rank] {
				dead[rf.Rank] = true
				host, herr := survivorFor(rf.Rank, dead)
				if herr != nil {
					return res, nil, herr
				}
				res.DeadRanks = append(res.DeadRanks, rf.Rank)
				res.HostOf[rf.Rank] = host
				reg.Counter("distsolver_rehosted_ranks_total").Inc()
				flight.Record(flight.Warn, "solver.rehost", rf.Rank, rf.DetectedAt, "logical rank re-hosted on surviving node", float64(host))
			}
		case errors.As(err, &rx):
			// Transport gave up on a link: roll back and retry the
			// attempt — the probabilistic drop schedule is seq-indexed,
			// so the replay is deterministic but not identical.
		default:
			return res, nil, err
		}
		if res.Restarts >= cfg.maxRestarts() {
			return res, nil, fmt.Errorf("distsolver: recovery gave up after %d restarts: %w", res.Restarts, err)
		}
		res.Restarts++
		reg.Counter("distsolver_rollbacks_total").Inc()
		failAt = maxClock(clocks)
		flight.Record(flight.Warn, "solver.rollback", -1, failAt, "rolling back to last checkpoint after detected failure", float64(res.Restarts))
		resumeBase = failAt + cfg.restartSeconds()
		res.RecoverySeconds += cfg.restartSeconds()
		reg.Counter("distsolver_recovery_seconds_total").Add(cfg.restartSeconds())
		attempt++
	}
}

// survivorFor picks the physical node re-hosting a crashed logical
// rank: the next surviving rank in ring order.
func survivorFor(failed int, dead []bool) (int, error) {
	p := len(dead)
	for d := 1; d < p; d++ {
		cand := (failed + d) % p
		if !dead[cand] {
			return cand, nil
		}
	}
	return -1, fmt.Errorf("distsolver: no surviving rank to re-host rank %d", failed)
}

func maxClock(clocks []float64) float64 {
	m := 0.0
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}
