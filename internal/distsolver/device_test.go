package distsolver

import (
	"math"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/mpi"
	"pjds/internal/telemetry"
)

// TestDeviceOperatorMatchesHost runs the distributed operator through
// the GPU simulator and asserts the result is bit-identical to the
// host path — both sum each row in stored column order — while the
// virtual clock advances by the simulated kernel time.
func TestDeviceOperatorMatchesHost(t *testing.T) {
	m := matgen.Banded(2000, 4, 14, 151, 1)
	x := make([]float64, m.NRows)
	for i := range x {
		x[i] = math.Sin(0.013 * float64(i))
	}
	host, _ := runDistributed(t, m, 4, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		op := NewOperator(rp, c)
		return op.Apply(out, x[rp.RowLo:rp.RowHi])
	})
	dev, clocks := runDistributed(t, m, 4, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		op := NewOperator(rp, c)
		op.Inst = &Instrument{Metrics: telemetry.NewRegistry()}
		if err := op.UseDevice(gpu.TeslaC2050(), 2); err != nil {
			return err
		}
		return op.Apply(out, x[rp.RowLo:rp.RowHi])
	})
	for i := range host {
		if math.Float64bits(host[i]) != math.Float64bits(dev[i]) {
			t.Fatalf("device y[%d] = %g, host %g (not bit-identical)", i, dev[i], host[i])
		}
	}
	for r, cl := range clocks {
		if cl <= 0 {
			t.Errorf("rank %d clock did not advance", r)
		}
	}
}

// TestDeviceCGMatchesHost solves the same SPD system with the host
// bytes/bandwidth operator and the device-simulated operator (enabled
// through Instrument.Device): iteration counts and the solution must
// agree exactly, since each application is bit-identical.
func TestDeviceCGMatchesHost(t *testing.T) {
	m := matgen.Stencil2D(30, 30)
	n := m.NRows
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Cos(0.07 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	solve := func(dev *gpu.Device) ([]float64, []int) {
		iters := make([]int, 4)
		got, _ := runDistributed(t, m, 4, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
			x := make([]float64, rp.LocalRows())
			inst := &Instrument{Metrics: telemetry.NewRegistry(), Device: dev, Workers: 2}
			res, err := CG(c, rp, x, b[rp.RowLo:rp.RowHi], 1e-11, 5000, inst)
			if err != nil {
				return err
			}
			iters[c.Rank()] = res.Iterations
			copy(out, x)
			return nil
		})
		return got, iters
	}
	hostX, hostIt := solve(nil)
	devX, devIt := solve(gpu.TeslaC2050())
	for r := range hostIt {
		if hostIt[r] != devIt[r] {
			t.Errorf("rank %d: device CG took %d iterations, host %d", r, devIt[r], hostIt[r])
		}
	}
	for i := range hostX {
		if math.Float64bits(hostX[i]) != math.Float64bits(devX[i]) {
			t.Fatalf("device solution diverges at %d: %g vs %g", i, devX[i], hostX[i])
		}
	}
	for i := range want {
		if math.Abs(devX[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g", i, devX[i], want[i])
		}
	}
}
