package distsolver

import (
	"errors"
	"math"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/mpi"
	"pjds/internal/simnet"
	"pjds/internal/solver"
)

// runDistributed partitions m over p ranks and runs body per rank,
// gathering each rank's output slice into a global vector.
func runDistributed(t *testing.T, m *matrix.CSR[float64], p int,
	body func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error) ([]float64, []float64) {
	t.Helper()
	pt, err := distmv.PartitionByNnz(m, p)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := distmv.Distribute(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	global := make([]float64, m.NRows)
	clocks, err := mpi.Run(p, simnet.QDRInfiniBand(), func(c *mpi.Comm) error {
		rp := problems[c.Rank()]
		return body(c, rp, global[rp.RowLo:rp.RowHi])
	})
	if err != nil {
		t.Fatal(err)
	}
	return global, clocks
}

func TestOperatorMatchesSerial(t *testing.T) {
	m := matgen.Banded(3000, 4, 14, 150, 1)
	x := make([]float64, m.NRows)
	for i := range x {
		x[i] = math.Sin(0.01 * float64(i))
	}
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	got, clocks := runDistributed(t, m, 5, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		op := NewOperator(rp, c)
		return op.Apply(out, x[rp.RowLo:rp.RowHi])
	})
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-12*(1+math.Abs(ref[i])) {
			t.Fatalf("y[%d] = %g, want %g", i, got[i], ref[i])
		}
	}
	for r, cl := range clocks {
		if cl <= 0 {
			t.Errorf("rank %d clock did not advance", r)
		}
	}
}

func TestDistributedDotAndNorm(t *testing.T) {
	m := matgen.Stencil2D(40, 40)
	x := make([]float64, m.NRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	var want float64
	for _, v := range x {
		want += v * v
	}
	runDistributed(t, m, 4, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		lo, hi := rp.RowLo, rp.RowHi
		got, err := Dot(c, x[lo:hi], x[lo:hi])
		if err != nil {
			return err
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("rank %d: dot = %g, want %g", c.Rank(), got, want)
		}
		n, err := Norm2(c, x[lo:hi])
		if err != nil {
			return err
		}
		if math.Abs(n-math.Sqrt(want)) > 1e-9 {
			t.Errorf("rank %d: norm = %g", c.Rank(), n)
		}
		return nil
	})
}

func TestDistributedCGMatchesSerial(t *testing.T) {
	m := matgen.Stencil2D(40, 40)
	n := m.NRows
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Cos(0.05 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	got, _ := runDistributed(t, m, 6, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		x := make([]float64, rp.LocalRows())
		res, err := CG(c, rp, x, b[rp.RowLo:rp.RowHi], 1e-11, 5000)
		if err != nil {
			return err
		}
		if res.Iterations == 0 {
			t.Errorf("rank %d: zero iterations", c.Rank())
		}
		copy(out, x)
		return nil
	})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// The serial CG agrees on the solution (sanity for the reference).
	xs := make([]float64, n)
	if _, err := solver.CG(solver.CSROperator{M: m}, xs, b, 1e-11, 5000); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(xs[i]-got[i]) > 1e-6 {
			t.Fatalf("serial and distributed CG disagree at %d", i)
		}
	}
}

func TestDistributedCGErrors(t *testing.T) {
	m := matgen.Stencil2D(10, 10)
	// Indefinite operator.
	neg := m.Clone()
	for i := range neg.Val {
		neg.Val[i] = -neg.Val[i]
	}
	runDistributed(t, neg, 2, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		x := make([]float64, rp.LocalRows())
		b := make([]float64, rp.LocalRows())
		for i := range b {
			b[i] = 1
		}
		if _, err := CG(c, rp, x, b, 1e-10, 50); err == nil {
			t.Errorf("rank %d: indefinite operator accepted", c.Rank())
		}
		return nil
	})
	// Size mismatch.
	runDistributed(t, m, 2, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		if _, err := CG(c, rp, make([]float64, 1), make([]float64, rp.LocalRows()), 1e-10, 5); err == nil {
			t.Errorf("rank %d: size mismatch accepted", c.Rank())
		}
		// Everyone still has to meet the collectives the other rank
		// posted? No collectives run before validation — fine.
		return nil
	})
	// Non-convergence.
	runDistributed(t, m, 2, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		x := make([]float64, rp.LocalRows())
		b := make([]float64, rp.LocalRows())
		for i := range b {
			b[i] = 1
		}
		_, err := CG(c, rp, x, b, 1e-15, 1)
		if !errors.Is(err, ErrNotConverged) {
			t.Errorf("rank %d: want ErrNotConverged, got %v", c.Rank(), err)
		}
		return nil
	})
}

func TestDistributedPowerIteration(t *testing.T) {
	// Defect-dominated Laplacian (well-separated top eigenvalue).
	m := matgen.Stencil2D(60, 60)
	for k := m.RowPtr[0]; k < m.RowPtr[1]; k++ {
		if m.ColIdx[k] == 0 {
			m.Val[k] = 40
		}
	}
	serial, err := solver.PowerIteration(solver.CSROperator{M: m}, nil, 1e-12, 20000)
	if err != nil {
		t.Fatal(err)
	}
	runDistributed(t, m, 5, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		res, err := PowerIteration(c, rp, nil, 1e-12, 20000)
		if err != nil {
			return err
		}
		if math.Abs(res.Eigenvalue-serial.Eigenvalue) > 1e-7*(1+math.Abs(serial.Eigenvalue)) {
			t.Errorf("rank %d: lambda %.10f vs serial %.10f", c.Rank(), res.Eigenvalue, serial.Eigenvalue)
		}
		if len(res.Vector) != rp.LocalRows() {
			t.Errorf("rank %d: vector slice length %d", c.Rank(), len(res.Vector))
		}
		return nil
	})
}

func TestHaloExchangeValidation(t *testing.T) {
	m := matgen.Banded(200, 3, 7, 20, 2)
	runDistributed(t, m, 2, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		h := NewHalo(rp, c)
		if _, err := h.Exchange(make([]float64, 3)); err == nil {
			t.Errorf("rank %d: wrong x size accepted", c.Rank())
		}
		// Matching correct exchange so the partner's sends complete.
		x := make([]float64, rp.LocalRows())
		if _, err := h.Exchange(x); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		return nil
	})
}

func TestPowerIterationValidation(t *testing.T) {
	m := matgen.Stencil2D(8, 8)
	runDistributed(t, m, 2, func(c *mpi.Comm, rp *distmv.RankProblem, out []float64) error {
		if _, err := PowerIteration(c, rp, make([]float64, 1), 1e-10, 5); err == nil {
			t.Errorf("rank %d: bad v0 accepted", c.Rank())
		}
		return nil
	})
}
