package distsolver

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"pjds/internal/distmv"
	"pjds/internal/mpi"
	"pjds/internal/profiles"
	"pjds/internal/telemetry"
)

// ErrNotConverged mirrors the serial solver package's sentinel.
var ErrNotConverged = errors.New("distsolver: not converged")

// CGResult reports a distributed conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64
}

// CG solves A·x = b for SPD A across all ranks: x and b hold this
// rank's rows, the operator exchanges halos internally, and the
// reductions synchronize the virtual clocks. x is updated in place;
// every rank returns the same result metadata. An optional Instrument
// records convergence gauges and per-iteration spans.
func CG(c *mpi.Comm, rp *distmv.RankProblem, x, b []float64, tol float64, maxIter int, inst ...*Instrument) (CGResult, error) {
	// Each rank goroutine runs its whole solve here: re-label it from
	// phase=mpi to phase=solver, keeping the rank for per-rank slicing.
	profiles.SetPhase(profiles.PhaseSolver, "rank", strconv.Itoa(rp.Rank))
	in := firstInstrument(inst)
	var gIter, gRes *telemetry.Gauge
	if in != nil {
		reg := in.registry()
		lbl := []telemetry.Label{telemetry.L("method", "cg"), telemetry.Li("rank", rp.Rank)}
		reg.Help("solver_iterations", "iterations completed by the most recent solve")
		reg.Help("solver_residual", "current convergence measure of the most recent solve")
		gIter = reg.Gauge("solver_iterations", lbl...)
		gRes = reg.Gauge("solver_residual", lbl...)
	}
	op := NewOperator(rp, c)
	op.Inst = in
	if in != nil && in.Device != nil {
		if err := op.UseDevice(in.Device, in.Workers); err != nil {
			return CGResult{}, err
		}
	}
	n := op.Dim()
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("distsolver: CG |x|=%d |b|=%d, own %d rows", len(x), len(b), n)
	}
	r := make([]float64, n)
	if err := op.Apply(r, x); err != nil {
		return CGResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	rr, err := Dot(c, r, r)
	if err != nil {
		return CGResult{}, err
	}
	bnorm, err := Norm2(c, b)
	if err != nil {
		return CGResult{}, err
	}
	if bnorm == 0 {
		bnorm = 1
	}
	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rr) <= tol*bnorm {
			res.Residual = math.Sqrt(rr)
			return res, nil
		}
		t0 := c.Clock()
		if err := op.Apply(ap, p); err != nil {
			return res, err
		}
		pap, err := Dot(c, p, ap)
		if err != nil {
			return res, err
		}
		if pap <= 0 {
			return res, fmt.Errorf("distsolver: operator not positive definite (pᵀAp = %g)", pap)
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew, err := Dot(c, r, r)
		if err != nil {
			return res, err
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
		res.Iterations++
		in.emit(rp.Rank, "solver", "CG iteration", t0, c.Clock(),
			map[string]string{"iteration": strconv.Itoa(res.Iterations)})
		if gIter != nil {
			gIter.Set(float64(res.Iterations))
			gRes.Set(math.Sqrt(rr))
		}
	}
	res.Residual = math.Sqrt(rr)
	if res.Residual > tol*bnorm {
		return res, fmt.Errorf("%w: residual %g after %d iterations", ErrNotConverged, res.Residual, maxIter)
	}
	return res, nil
}

// PowerResult reports a distributed power iteration.
type PowerResult struct {
	Eigenvalue float64
	Iterations int
	// Vector is this rank's slice of the normalized eigenvector.
	Vector []float64
}

// PowerIteration finds the dominant eigenvalue of the distributed
// operator; v0 (optional) is this rank's slice of the start vector.
// An optional Instrument records convergence gauges and per-iteration
// spans.
func PowerIteration(c *mpi.Comm, rp *distmv.RankProblem, v0 []float64, tol float64, maxIter int, inst ...*Instrument) (PowerResult, error) {
	profiles.SetPhase(profiles.PhaseSolver, "rank", strconv.Itoa(rp.Rank))
	in := firstInstrument(inst)
	var gIter, gRes, gEig *telemetry.Gauge
	if in != nil {
		reg := in.registry()
		lbl := []telemetry.Label{telemetry.L("method", "power"), telemetry.Li("rank", rp.Rank)}
		reg.Help("solver_iterations", "iterations completed by the most recent solve")
		reg.Help("solver_residual", "current convergence measure of the most recent solve")
		reg.Help("solver_eigenvalue", "current dominant-eigenvalue estimate")
		gIter = reg.Gauge("solver_iterations", lbl...)
		gRes = reg.Gauge("solver_residual", lbl...)
		gEig = reg.Gauge("solver_eigenvalue", telemetry.Li("rank", rp.Rank))
	}
	op := NewOperator(rp, c)
	op.Inst = in
	if in != nil && in.Device != nil {
		if err := op.UseDevice(in.Device, in.Workers); err != nil {
			return PowerResult{}, err
		}
	}
	n := op.Dim()
	v := make([]float64, n)
	if v0 != nil {
		if len(v0) != n {
			return PowerResult{}, fmt.Errorf("distsolver: |v0|=%d, own %d rows", len(v0), n)
		}
		copy(v, v0)
	} else {
		for i := range v {
			v[i] = 1 + 0.001*float64((rp.RowLo+i)%17)
		}
	}
	norm, err := Norm2(c, v)
	if err != nil {
		return PowerResult{}, err
	}
	for i := range v {
		v[i] /= norm
	}
	av := make([]float64, n)
	lambda := 0.0
	for k := 0; k < maxIter; k++ {
		t0 := c.Clock()
		if err := op.Apply(av, v); err != nil {
			return PowerResult{}, err
		}
		next, err := Dot(c, v, av)
		if err != nil {
			return PowerResult{}, err
		}
		nv, err := Norm2(c, av)
		if err != nil {
			return PowerResult{}, err
		}
		if nv == 0 {
			return PowerResult{}, fmt.Errorf("distsolver: hit the null space")
		}
		for i := range v {
			v[i] = av[i] / nv
		}
		in.emit(rp.Rank, "solver", "power iteration", t0, c.Clock(),
			map[string]string{"iteration": strconv.Itoa(k + 1)})
		if gIter != nil {
			gIter.Set(float64(k + 1))
			gRes.Set(math.Abs(next - lambda))
			gEig.Set(next)
		}
		if k > 0 && math.Abs(next-lambda) <= tol*math.Abs(next) {
			return PowerResult{Eigenvalue: next, Iterations: k + 1, Vector: v}, nil
		}
		lambda = next
	}
	return PowerResult{Eigenvalue: lambda, Iterations: maxIter, Vector: v},
		fmt.Errorf("%w: power iteration after %d steps", ErrNotConverged, maxIter)
}
