package distsolver

import (
	"math"
	"strings"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/faults"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/mpi"
	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

// recoverProblem builds a 4-rank SPD test system with a known solution.
func recoverProblem(t *testing.T) ([]*distmv.RankProblem, []float64, []float64) {
	t.Helper()
	m := matgen.Stencil2D(24, 24)
	n := m.NRows
	pt, err := distmv.PartitionByRows(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := distmv.Distribute(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(0.05 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	return problems, b, want
}

func runRecover(t *testing.T, problems []*distmv.RankProblem, b []float64, cfg RecoverConfig) (*RecoverResult, []float64) {
	t.Helper()
	res, x, err := RecoverableCG(simnet.QDRInfiniBand(), problems, b, nil, cfg)
	if err != nil {
		t.Fatalf("RecoverableCG: %v (failures: %v)", err, res.Failures)
	}
	return res, x
}

// TestRecoverableCGMatchesPlainCG: with no faults, the recoverable
// driver reproduces plain CG bit-for-bit — checkpoints are pure
// snapshots that never perturb the arithmetic.
func TestRecoverableCGMatchesPlainCG(t *testing.T) {
	problems, b, _ := recoverProblem(t)
	n := problems[0].GlobalN
	cfg := RecoverConfig{Tol: 1e-10, MaxIter: 2000, CheckpointEvery: 7}
	res, x := runRecover(t, problems, b, cfg)

	xPlain := make([]float64, n)
	var plain CGResult
	_, err := mpi.Run(problems[0].P, simnet.QDRInfiniBand(), func(c *mpi.Comm) error {
		rp := problems[c.Rank()]
		xl := make([]float64, rp.LocalRows())
		r, err := CG(c, rp, xl, b[rp.RowLo:rp.RowHi], 1e-10, 2000)
		if err != nil {
			return err
		}
		copy(xPlain[rp.RowLo:rp.RowHi], xl)
		if c.Rank() == 0 {
			plain = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CG.Iterations != plain.Iterations {
		t.Errorf("recoverable CG took %d iterations, plain %d", res.CG.Iterations, plain.Iterations)
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(xPlain[i]) {
			t.Fatalf("solutions diverge at %d: %g vs %g", i, x[i], xPlain[i])
		}
	}
	if res.Checkpoints == 0 || res.Restarts != 0 {
		t.Errorf("checkpoints=%d restarts=%d on a healthy run", res.Checkpoints, res.Restarts)
	}
}

// TestCrashRecoveryBitExact: a rank crash mid-solve triggers rollback
// to the last checkpoint, re-hosting, and a solution bit-identical to
// the fault-free run.
func TestCrashRecoveryBitExact(t *testing.T) {
	problems, b, want := recoverProblem(t)
	base := RecoverConfig{Tol: 1e-10, MaxIter: 2000, CheckpointEvery: 10}
	_, xClean := runRecover(t, problems, b, base)

	plan := faults.MustParse(7, "crash rank=2 iter=25")
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog()
	cfg := base
	cfg.Schedule = plan
	cfg.Inst = &Instrument{Metrics: reg, Spans: spans}
	res, x := runRecover(t, problems, b, cfg)

	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (failures: %v)", res.Restarts, res.Failures)
	}
	if len(res.DeadRanks) != 1 || res.DeadRanks[0] != 2 || res.HostOf[2] != 3 {
		t.Errorf("dead=%v hostOf=%v, want rank 2 re-hosted on 3", res.DeadRanks, res.HostOf)
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "rank 2 crashed") {
		t.Errorf("failures = %v", res.Failures)
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(xClean[i]) {
			t.Fatalf("recovered solution diverges at %d: %g vs %g", i, x[i], xClean[i])
		}
	}
	// And it actually solves the system.
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-7 {
			t.Fatalf("recovered solution wrong at %d: %g vs %g", i, x[i], want[i])
		}
	}
	// Recovery telemetry: one rollback, some checkpoints, and rollback
	// spans on the recovery lane of every rank.
	if got := reg.Counter("distsolver_rollbacks_total").Value(); got != 1 {
		t.Errorf("rollbacks counter = %g", got)
	}
	rollSpans := 0
	for _, s := range spans.Spans() {
		if s.Lane == "recovery" && s.Name == "rollback" {
			rollSpans++
		}
	}
	if rollSpans != 4 {
		t.Errorf("rollback spans = %d, want one per rank", rollSpans)
	}
	if res.RecoverySeconds <= 0 {
		t.Errorf("RecoverySeconds = %g", res.RecoverySeconds)
	}
	// The final attempt's clocks sit beyond the failure point.
	for r, c := range res.Clocks {
		if c <= 0 {
			t.Errorf("rank %d clock = %g after recovery", r, c)
		}
	}
}

// TestCrashBeforeFirstCheckpoint: rollback with no committed
// checkpoint restarts from the initial state and still converges to
// the fault-free bits.
func TestCrashBeforeFirstCheckpoint(t *testing.T) {
	problems, b, _ := recoverProblem(t)
	base := RecoverConfig{Tol: 1e-10, MaxIter: 2000, CheckpointEvery: 50}
	_, xClean := runRecover(t, problems, b, base)

	cfg := base
	cfg.Schedule = faults.MustParse(7, "crash rank=0 iter=3")
	res, x := runRecover(t, problems, b, cfg)
	if res.Restarts != 1 || len(res.DeadRanks) != 1 || res.DeadRanks[0] != 0 {
		t.Fatalf("restarts=%d dead=%v", res.Restarts, res.DeadRanks)
	}
	if res.HostOf[0] != 1 {
		t.Errorf("hostOf[0] = %d, want 1", res.HostOf[0])
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(xClean[i]) {
			t.Fatalf("solution diverges at %d", i)
		}
	}
}

// TestECCDowngradeInDistributedSolve: an ECC event on one rank's
// device degrades only that rank to host execution; the solve
// completes without restart, bit-identical to the healthy run.
func TestECCDowngradeInDistributedSolve(t *testing.T) {
	problems, b, _ := recoverProblem(t)
	dev := gpu.TeslaC2070()
	reg := telemetry.NewRegistry()
	base := RecoverConfig{
		Tol: 1e-10, MaxIter: 2000, CheckpointEvery: 10,
		Inst: &Instrument{Metrics: telemetry.NewRegistry(), Device: dev},
	}
	_, xClean := runRecover(t, problems, b, base)

	plan := faults.MustParse(11, "ecc rank=1 launch=8")
	cfg := base
	cfg.Inst = &Instrument{Metrics: reg, Device: dev}
	cfg.Schedule = plan
	cfg.DeviceFaults = func(rank int) gpu.ECCInjector { return plan.DeviceFor(rank) }
	res, x := runRecover(t, problems, b, cfg)

	if res.Restarts != 0 {
		t.Fatalf("ECC downgrade should not restart: %d (failures %v)", res.Restarts, res.Failures)
	}
	if len(res.DegradedRanks) != 1 || res.DegradedRanks[0] != 1 {
		t.Errorf("degraded ranks = %v, want [1]", res.DegradedRanks)
	}
	if got := reg.Counter("distsolver_ecc_downgrades_total", telemetry.Li("rank", 1)).Value(); got != 1 {
		t.Errorf("downgrade counter = %g", got)
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(xClean[i]) {
			t.Fatalf("degraded solution diverges at %d: %g vs %g", i, x[i], xClean[i])
		}
	}
}

// TestMessageDropsRecovered: a lossy wire exercises the reliable
// transport under the solver; retries are charged, no restart happens,
// and the solution bits are unchanged.
func TestMessageDropsRecovered(t *testing.T) {
	problems, b, _ := recoverProblem(t)
	base := RecoverConfig{Tol: 1e-10, MaxIter: 2000}
	_, xClean := runRecover(t, problems, b, base)

	plan := faults.MustParse(42, "drop all prob=0.02")
	reg := telemetry.NewRegistry()
	cfg := base
	cfg.Wire = plan
	cfg.Inst = &Instrument{Metrics: reg}
	res, x := runRecover(t, problems, b, cfg)
	if res.Restarts != 0 {
		t.Fatalf("drops within the retry budget should not restart (failures %v)", res.Failures)
	}
	retries := 0.0
	for rank := 0; rank < 4; rank++ {
		retries += reg.Counter("mpi_retries_total", telemetry.Li("rank", rank)).Value()
	}
	if retries == 0 {
		t.Error("no retries charged under a 2% drop rate")
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(xClean[i]) {
			t.Fatalf("lossy-wire solution diverges at %d", i)
		}
	}
}

// TestSlowFactorIsTimingOnly: a scheduled rank slowdown stretches that
// rank's clock but never touches the numeric trajectory.
func TestSlowFactorIsTimingOnly(t *testing.T) {
	problems, b, _ := recoverProblem(t)
	base := RecoverConfig{Tol: 1e-10, MaxIter: 2000}
	resClean, xClean := runRecover(t, problems, b, base)

	cfg := base
	cfg.Schedule = faults.MustParse(5, "slow rank=1 factor=4")
	res, x := runRecover(t, problems, b, cfg)
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(xClean[i]) {
			t.Fatalf("slowed solution diverges at %d", i)
		}
	}
	if res.Clocks[1] <= resClean.Clocks[1] {
		t.Errorf("rank 1 clock %g not slowed (healthy %g)", res.Clocks[1], resClean.Clocks[1])
	}
}
