package distmv

import (
	"fmt"
	"testing"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

// BenchmarkRunSpMVMByMode measures the full simulated multi-GPU
// pipeline per communication scheme (setup + profile + timed loop).
func BenchmarkRunSpMVMByMode(b *testing.B) {
	m := matgen.Banded(8000, 8, 24, 400, 1)
	x := testVec(m.NCols)
	for _, mode := range Modes() {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunSpMVM(m, x, 8, mode, Config{Iterations: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistribute measures the setup phase alone.
func BenchmarkDistribute(b *testing.B) {
	m := matgen.Banded(8000, 8, 24, 400, 1)
	pt, err := PartitionByNnz(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distribute(m, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartition measures the parallel per-rank decomposition
// (local format build + halo setup) across worker counts.
func BenchmarkPartition(b *testing.B) {
	m := matgen.Banded(8000, 8, 24, 400, 1)
	pt, err := PartitionByNnz(m, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := matrix.ConvertOptions{Workers: w, ForceParallel: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DistributeOpt(m, pt, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
