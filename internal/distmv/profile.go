package distmv

import (
	"fmt"
	"math"

	"pjds/internal/core"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// FormatKind selects the device storage format of the distributed
// code. The paper's scaling runs use ELLPACK-R throughout (§III); the
// pJDS variant is the outlook the paper defers to future work,
// implemented here (DESIGN.md experiment E12).
type FormatKind int

// Supported device formats.
const (
	FormatELLPACKR FormatKind = iota
	FormatPJDS
)

// String names the format.
func (k FormatKind) String() string {
	switch k {
	case FormatELLPACKR:
		return "ELLPACK-R"
	case FormatPJDS:
		return "pJDS"
	default:
		return fmt.Sprintf("FormatKind(%d)", int(k))
	}
}

// RankProfile holds one rank's functional result and the simulated
// kernel statistics the timing choreography is built from.
type RankProfile struct {
	// Local and NonLocal profile the split kernels of the overlapped
	// modes (the non-local kernel accumulates, adding LHS read
	// traffic, §III-A); Merged profiles vector mode's single-step
	// kernel over the combined column space.
	Local, NonLocal, Merged *gpu.KernelStats
	// Y is the rank's result rows in original order.
	Y []float64
}

// Profile runs the rank's kernels once on the device simulator with
// the extended RHS xExt = [local x | halo x], returning functional
// results and timing. The merged single-step kernel is rebuilt, run
// and discarded; its result must agree with local+non-local, which is
// asserted here as an internal consistency check. Kernel statistics
// are published into reg (nil selects telemetry.Default()) labelled by
// rank and phase, so concurrent ranks never share a gauge series.
// workers is forwarded to gpu.RunOptions.Workers (0 = package
// default); it affects host wall-clock only, never results or stats.
func (rp *RankProblem) Profile(dev *gpu.Device, kind FormatKind, xExt []float64, reg *telemetry.Registry, workers int) (*RankProfile, error) {
	nloc := rp.LocalRows()
	if len(xExt) != nloc+rp.HaloSize() {
		return nil, fmt.Errorf("distmv: rank %d xExt length %d, want %d", rp.Rank, len(xExt), nloc+rp.HaloSize())
	}
	xLoc := xExt[:nloc]
	xHalo := xExt[nloc:]
	prof := &RankProfile{Y: make([]float64, nloc)}

	runOne := func(phase string, m *matrix.CSR[float64], x, y []float64, acc bool) (*gpu.KernelStats, error) {
		opt := gpu.RunOptions{
			Accumulate: acc,
			Workers:    workers,
			Metrics:    reg,
			MetricLabels: []telemetry.Label{
				telemetry.Li("rank", rp.Rank),
				telemetry.L("phase", phase),
			},
		}
		switch kind {
		case FormatELLPACKR:
			return gpu.RunELLPACKR(dev, formats.NewELLPACKR(m), y, x, opt)
		case FormatPJDS:
			p, err := core.NewPJDS(m, core.Options{})
			if err != nil {
				return nil, err
			}
			yp := make([]float64, m.NRows)
			opt.Accumulate = false
			st, err := gpu.RunPJDS(dev, p, yp, x, opt)
			if err != nil {
				return nil, err
			}
			// Leave the permuted basis; accumulate on the host side of
			// the simulation if requested.
			if acc {
				for i, old := range p.Perm {
					y[old] += yp[i]
				}
			} else {
				matrix.Scatter(y, yp, p.Perm)
			}
			return st, nil
		default:
			return nil, fmt.Errorf("distmv: unknown format kind %d", kind)
		}
	}

	var err error
	if prof.Local, err = runOne("local", rp.Local, xLoc, prof.Y, false); err != nil {
		return nil, fmt.Errorf("distmv: rank %d local kernel: %w", rp.Rank, err)
	}
	if prof.NonLocal, err = runOne("non-local", rp.NonLocal, xHalo, prof.Y, true); err != nil {
		return nil, fmt.Errorf("distmv: rank %d non-local kernel: %w", rp.Rank, err)
	}

	merged := rp.MergedSlice()
	yMerged := make([]float64, nloc)
	if prof.Merged, err = runOne("merged", merged, xExt, yMerged, false); err != nil {
		return nil, fmt.Errorf("distmv: rank %d merged kernel: %w", rp.Rank, err)
	}
	for i := range yMerged {
		if d := math.Abs(yMerged[i] - prof.Y[i]); d > 1e-9*(1+math.Abs(prof.Y[i])) {
			return nil, fmt.Errorf("distmv: rank %d: split and merged kernels disagree at row %d: %g vs %g",
				rp.Rank, i, prof.Y[i], yMerged[i])
		}
	}
	return prof, nil
}
