// Package distmv implements the paper's §III: distributed-memory
// spMVM across multiple GPUs. A square matrix is partitioned into
// contiguous row blocks (non-zero balanced); each rank holds a local
// sub-matrix (columns inside its row range) and a non-local one
// (columns owned by other ranks, remapped onto a compact halo). One
// spMVM then needs a halo exchange of RHS elements, host↔device PCIe
// transfers, and one or two kernel launches, choreographed in one of
// the three communication schemes of §III-A: vector mode, naive
// overlap, and task mode (dedicated communication thread, Fig. 4).
package distmv

import (
	"fmt"
	"sort"

	"pjds/internal/gpu"
	"pjds/internal/matrix"
)

// Partition is a contiguous row-block partition: rank r owns rows
// [Bounds[r], Bounds[r+1]).
type Partition struct {
	Bounds []int
}

// PartitionByNnz splits the matrix into p blocks of approximately
// equal non-zero count (the load-balancing choice of [4]).
func PartitionByNnz(m *matrix.CSR[float64], p int) (Partition, error) {
	if p < 1 {
		return Partition{}, fmt.Errorf("distmv: %d ranks", p)
	}
	if p > m.NRows && m.NRows > 0 {
		return Partition{}, fmt.Errorf("distmv: %d ranks for %d rows", p, m.NRows)
	}
	b := make([]int, p+1)
	total := m.Nnz()
	row := 0
	for r := 1; r < p; r++ {
		target := total * r / p
		for row < m.NRows && m.RowPtr[row] < target {
			row++
		}
		// Never leave a rank empty: advance at least one row per rank.
		if row <= b[r-1] {
			row = b[r-1] + 1
		}
		b[r] = row
	}
	b[p] = m.NRows
	return Partition{Bounds: b}, nil
}

// PartitionByRows splits the matrix into p blocks of (nearly) equal
// row count — simpler than non-zero balancing but load-imbalanced on
// matrices with varying row lengths; the ablation quantifies the
// difference.
func PartitionByRows(m *matrix.CSR[float64], p int) (Partition, error) {
	if p < 1 {
		return Partition{}, fmt.Errorf("distmv: %d ranks", p)
	}
	if p > m.NRows && m.NRows > 0 {
		return Partition{}, fmt.Errorf("distmv: %d ranks for %d rows", p, m.NRows)
	}
	b := make([]int, p+1)
	for r := 1; r < p; r++ {
		b[r] = m.NRows * r / p
		if b[r] <= b[r-1] {
			b[r] = b[r-1] + 1
		}
	}
	b[p] = m.NRows
	return Partition{Bounds: b}, nil
}

// PartitionByKernelTime balances the *estimated kernel time* of each
// block on the given device instead of raw non-zeros: a block's cost
// is its memory traffic divided by the bandwidth its occupancy can
// sustain, so a few very long rows no longer win a whole starved GPU
// (the failure mode the partitioning ablation exposes for plain nnz
// balancing). Implemented as a binary search over the bottleneck cost
// with a greedy feasibility check.
func PartitionByKernelTime(dev *gpu.Device) func(*matrix.CSR[float64], int) (Partition, error) {
	return func(m *matrix.CSR[float64], p int) (Partition, error) {
		if p < 1 {
			return Partition{}, fmt.Errorf("distmv: %d ranks", p)
		}
		if p > m.NRows && m.NRows > 0 {
			return Partition{}, fmt.Errorf("distmv: %d ranks for %d rows", p, m.NRows)
		}
		if err := dev.Validate(); err != nil {
			return Partition{}, err
		}
		// cost of rows [lo, hi): streaming bytes over occupancy-derated
		// bandwidth (halo effects are second-order for balancing).
		cost := func(lo, hi int) float64 {
			rows := hi - lo
			if rows <= 0 {
				return 0
			}
			nnz := m.RowPtr[hi] - m.RowPtr[lo]
			bytes := float64(nnz)*12 + float64(rows)*24
			warps := (rows + dev.WarpSize - 1) / dev.WarpSize
			return bytes / dev.EffectiveBandwidth(warps)
		}
		// feasible reports whether a max block cost of t admits ≤ p
		// non-empty blocks, and returns the greedy bounds.
		feasible := func(t float64) ([]int, bool) {
			b := []int{0}
			lo := 0
			for lo < m.NRows {
				// Largest hi with cost(lo, hi) ≤ t (cost is monotone in
				// hi); always take at least one row.
				hi := lo + 1
				step := 1
				for hi+step <= m.NRows && cost(lo, hi+step) <= t {
					hi += step
					step *= 2
				}
				for step > 1 {
					step /= 2
					for hi+step <= m.NRows && cost(lo, hi+step) <= t {
						hi += step
					}
				}
				b = append(b, hi)
				lo = hi
				if len(b) > p+1 {
					return nil, false
				}
			}
			return b, len(b) <= p+1
		}
		// Binary search the bottleneck cost.
		loT, hiT := 0.0, cost(0, m.NRows)
		for i := 0; i < 50; i++ {
			mid := (loT + hiT) / 2
			if _, ok := feasible(mid); ok {
				hiT = mid
			} else {
				loT = mid
			}
		}
		bounds, ok := feasible(hiT)
		if !ok {
			return Partition{}, fmt.Errorf("distmv: kernel-time partitioning failed for %d ranks", p)
		}
		// Greedy may use fewer blocks than p; split the largest-cost
		// blocks' row ranges until the count matches (every rank must
		// own at least one row).
		for len(bounds)-1 < p {
			worst, worstCost := -1, -1.0
			for r := 0; r+1 < len(bounds); r++ {
				if bounds[r+1]-bounds[r] >= 2 {
					if c := cost(bounds[r], bounds[r+1]); c > worstCost {
						worst, worstCost = r, c
					}
				}
			}
			if worst < 0 {
				return Partition{}, fmt.Errorf("distmv: cannot split %d rows over %d ranks", m.NRows, p)
			}
			mid := (bounds[worst] + bounds[worst+1]) / 2
			bounds = append(bounds[:worst+1], append([]int{mid}, bounds[worst+1:]...)...)
		}
		return Partition{Bounds: bounds}, nil
	}
}

// Ranks returns the number of row blocks.
func (pt Partition) Ranks() int { return len(pt.Bounds) - 1 }

// Range returns rank r's row interval [lo, hi).
func (pt Partition) Range(r int) (lo, hi int) { return pt.Bounds[r], pt.Bounds[r+1] }

// Owner returns the rank owning the given row/column index.
func (pt Partition) Owner(idx int) int {
	// The first bound greater than idx, minus one.
	r := sort.SearchInts(pt.Bounds[1:], idx+1)
	return r
}

// RankProblem is everything one rank needs for the distributed spMVM.
type RankProblem struct {
	Rank, P      int
	RowLo, RowHi int
	GlobalN      int

	// Local holds the columns inside [RowLo, RowHi), remapped to
	// 0-based local indices; NonLocal holds the remaining columns
	// remapped onto the compact halo [0, len(HaloCols)).
	Local    *matrix.CSR[float64]
	NonLocal *matrix.CSR[float64]

	// HaloCols lists the needed remote global column indices, sorted
	// ascending (hence grouped by owner, since blocks are contiguous).
	HaloCols []int32
	// HaloOffset[o] is the position in HaloCols where owner o's block
	// starts; owners not present are absent from the map.
	HaloOffset map[int]int
	// RecvCount[o] is the number of halo elements owned by rank o.
	RecvCount map[int]int
	// SendIdx[r] lists the local (0-based) row indices whose x values
	// this rank must send to rank r each iteration, in r's halo order.
	SendIdx map[int][]int32
}

// LocalRows returns the number of rows this rank owns.
func (rp *RankProblem) LocalRows() int { return rp.RowHi - rp.RowLo }

// HaloSize returns the number of remote RHS elements needed per
// iteration.
func (rp *RankProblem) HaloSize() int { return len(rp.HaloCols) }

// SendElems returns the total number of x elements sent per iteration.
func (rp *RankProblem) SendElems() int {
	n := 0
	for _, idx := range rp.SendIdx {
		n += len(idx)
	}
	return n
}

// Neighbors returns the number of distinct ranks communicated with
// (union of send and receive partners).
func (rp *RankProblem) Neighbors() int {
	set := map[int]bool{}
	for o := range rp.RecvCount {
		set[o] = true
	}
	for o := range rp.SendIdx {
		set[o] = true
	}
	return len(set)
}

// Distribute builds all rank problems for a square matrix under the
// given partition. This is the setup phase that real codes run once
// before the iteration loop; the paper's measurements exclude it.
func Distribute(m *matrix.CSR[float64], pt Partition) ([]*RankProblem, error) {
	return DistributeOpt(m, pt, matrix.ConvertOptions{})
}

// DistributeOpt is Distribute with explicit conversion options. Rank
// problems are independent, so their construction (column scan, halo
// discovery, local/non-local split) parallelizes over ranks; the send
// lists then parallelize over the *owning* rank, each worker writing
// only its owners' SendIdx maps. The result is identical to the
// sequential build for every worker count.
func DistributeOpt(m *matrix.CSR[float64], pt Partition, opt matrix.ConvertOptions) ([]*RankProblem, error) {
	if m.NRows != m.NCols {
		return nil, fmt.Errorf("distmv: matrix %dx%d not square", m.NRows, m.NCols)
	}
	p := pt.Ranks()
	problems := make([]*RankProblem, p)

	done := opt.Phase("partition-build")
	opt.Run(p, func(w, rLo, rHi int) {
		for r := rLo; r < rHi; r++ {
			problems[r] = buildRankProblem(m, pt, r)
		}
	})
	done()

	// Derive the send lists from the receive lists, parallel over the
	// owner: worker blocks over o write disjoint SendIdx maps.
	done = opt.Phase("partition-halo")
	opt.Run(p, func(w, oLo, oHi int) {
		for o := oLo; o < oHi; o++ {
			owner := problems[o]
			for _, rp := range problems {
				cnt := rp.RecvCount[o]
				if cnt == 0 {
					continue
				}
				off := rp.HaloOffset[o]
				idx := make([]int32, cnt)
				for k := 0; k < cnt; k++ {
					idx[k] = rp.HaloCols[off+k] - int32(owner.RowLo)
				}
				owner.SendIdx[rp.Rank] = idx
			}
		}
	})
	done()
	return problems, nil
}

// buildRankProblem assembles rank r's problem (everything except the
// send lists, which need all ranks' halos).
func buildRankProblem(m *matrix.CSR[float64], pt Partition, r int) *RankProblem {
	p := pt.Ranks()
	{
		lo, hi := pt.Range(r)
		rp := &RankProblem{
			Rank: r, P: p, RowLo: lo, RowHi: hi, GlobalN: m.NRows,
			HaloOffset: map[int]int{},
			RecvCount:  map[int]int{},
			SendIdx:    map[int][]int32{},
		}
		// First pass: collect the distinct remote columns.
		remote := map[int32]bool{}
		var nnzLoc, nnzNl int
		for i := lo; i < hi; i++ {
			cols, _ := m.Row(i)
			for _, c := range cols {
				if int(c) >= lo && int(c) < hi {
					nnzLoc++
				} else {
					nnzNl++
					remote[c] = true
				}
			}
		}
		rp.HaloCols = make([]int32, 0, len(remote))
		for c := range remote {
			rp.HaloCols = append(rp.HaloCols, c)
		}
		sort.Slice(rp.HaloCols, func(a, b int) bool { return rp.HaloCols[a] < rp.HaloCols[b] })
		haloSlot := make(map[int32]int32, len(rp.HaloCols))
		for s, c := range rp.HaloCols {
			haloSlot[c] = int32(s)
			o := pt.Owner(int(c))
			if _, ok := rp.HaloOffset[o]; !ok {
				rp.HaloOffset[o] = s
			}
			rp.RecvCount[o]++
		}

		// Second pass: split into local and non-local CSR.
		nloc := hi - lo
		local := &matrix.CSR[float64]{
			NRows: nloc, NCols: nloc,
			RowPtr: make([]int, nloc+1),
			ColIdx: make([]int32, 0, nnzLoc),
			Val:    make([]float64, 0, nnzLoc),
		}
		nonlocal := &matrix.CSR[float64]{
			NRows: nloc, NCols: len(rp.HaloCols),
			RowPtr: make([]int, nloc+1),
			ColIdx: make([]int32, 0, nnzNl),
			Val:    make([]float64, 0, nnzNl),
		}
		for i := lo; i < hi; i++ {
			cols, vals := m.Row(i)
			for k, c := range cols {
				if int(c) >= lo && int(c) < hi {
					local.ColIdx = append(local.ColIdx, c-int32(lo))
					local.Val = append(local.Val, vals[k])
				} else {
					nonlocal.ColIdx = append(nonlocal.ColIdx, haloSlot[c])
					nonlocal.Val = append(nonlocal.Val, vals[k])
				}
			}
			local.RowPtr[i-lo+1] = len(local.Val)
			nonlocal.RowPtr[i-lo+1] = len(nonlocal.Val)
		}
		rp.Local = local
		rp.NonLocal = nonlocal
		return rp
	}
}

// MergedSlice rebuilds the rank's full row slice with the extended
// column space [0, nloc+halo): local columns first, halo columns
// after. It is the operand of vector mode's single-step kernel; build
// it on demand and drop it after profiling, it duplicates the rank's
// matrix data.
func (rp *RankProblem) MergedSlice() *matrix.CSR[float64] {
	nloc := rp.LocalRows()
	nnz := rp.Local.Nnz() + rp.NonLocal.Nnz()
	mg := &matrix.CSR[float64]{
		NRows: nloc, NCols: nloc + rp.HaloSize(),
		RowPtr: make([]int, nloc+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for i := 0; i < nloc; i++ {
		lc, lv := rp.Local.Row(i)
		nc, nv := rp.NonLocal.Row(i)
		// Keep column order sorted in the merged space: local columns
		// stay below nloc, halo columns are shifted above.
		mg.ColIdx = append(mg.ColIdx, lc...)
		mg.Val = append(mg.Val, lv...)
		for k, c := range nc {
			mg.ColIdx = append(mg.ColIdx, c+int32(nloc))
			mg.Val = append(mg.Val, nv[k])
		}
		mg.RowPtr[i+1] = len(mg.Val)
	}
	return mg
}
