package distmv

import (
	"reflect"
	"testing"

	"pjds/internal/matrix"
)

// TestDistributeOptWorkerDeterminism: the parallel per-rank build and
// halo exchange setup must reproduce the sequential decomposition
// exactly — same local formats, same halo maps, same schedules.
func TestDistributeOptWorkerDeterminism(t *testing.T) {
	m := testMatrix(t)
	pt, err := PartitionByNnz(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	base, err := DistributeOpt(m, pt, matrix.ConvertOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		got, err := DistributeOpt(m, pt, matrix.ConvertOptions{Workers: w, ForceParallel: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d ranks, want %d", w, len(got), len(base))
		}
		for r := range base {
			if !reflect.DeepEqual(base[r], got[r]) {
				t.Fatalf("workers=%d: rank %d problem differs from sequential build", w, r)
			}
		}
	}
}
