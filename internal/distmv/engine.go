package distmv

import (
	"fmt"
	"math"
	"strconv"

	"pjds/internal/hostkernel"
	"pjds/internal/matrix"
	"pjds/internal/mpi"
	"pjds/internal/telemetry"
)

// RunSpMVM executes y = A·x on p simulated GPU nodes under the given
// communication mode: the matrix is partitioned by non-zeros, each
// rank profiles its kernels on the device simulator once, and the
// timed loop then repeats the per-iteration choreography cfg.Iterations
// times with real halo payloads flowing between the rank goroutines.
// The assembled Y is bit-decomposable against the serial reference
// (same split of every row sum into local + non-local partial sums).
func RunSpMVM(a *matrix.CSR[float64], x []float64, p int, mode Mode, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(x) != a.NCols {
		return nil, fmt.Errorf("distmv: |x| = %d on %dx%d matrix: %w", len(x), a.NRows, a.NCols, matrix.ErrShape)
	}
	partitioner := cfg.Partitioner
	if partitioner == nil {
		partitioner = PartitionByNnz
	}
	pt, err := partitioner(a, p)
	if err != nil {
		return nil, err
	}
	if pt.Ranks() != p {
		return nil, fmt.Errorf("distmv: partitioner produced %d blocks for %d ranks", pt.Ranks(), p)
	}
	problems, err := DistributeOpt(a, pt, matrix.ConvertOptions{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	if !cfg.SkipFitCheck {
		if _, err := CheckFit(problems, cfg.Device, cfg.Format); err != nil {
			return nil, fmt.Errorf("P=%d: %w", p, err)
		}
	}

	res := &Result{
		Mode: mode, Format: cfg.Format, P: p, Iterations: cfg.Iterations,
		GlobalNnz: int64(a.Nnz()),
		Y:         make([]float64, a.NRows),
		Ranks:     make([]RankReport, p),
	}
	var totalSeconds float64 // written by rank 0

	ranksPerNode := cfg.GPUsPerNode
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	reg := cfg.Telemetry
	reg.Help("distmv_rank_local_rows", "rows owned by the rank")
	reg.Help("distmv_rank_halo_elems", "RHS elements received from other ranks per iteration")
	reg.Help("distmv_rank_send_elems", "RHS elements sent to other ranks per iteration")
	reg.Help("distmv_rank_neighbors", "ranks this rank exchanges halos with")
	opts := mpi.Options{
		RanksPerNode: ranksPerNode, Intra: cfg.IntraNodeFabric, Metrics: reg, Spans: cfg.Spans,
		Faults: cfg.Faults, Retry: cfg.Retry, HeartbeatSeconds: cfg.HeartbeatSeconds,
	}
	_, err = mpi.RunWithOptions(p, cfg.Fabric, opts, func(c *mpi.Comm) error {
		rp := problems[c.Rank()]
		nloc := rp.LocalRows()

		// Untimed setup: extended RHS from the replicated input.
		xExt := make([]float64, nloc+rp.HaloSize())
		copy(xExt, x[rp.RowLo:rp.RowHi])
		for s, col := range rp.HaloCols {
			xExt[nloc+s] = x[col]
		}
		prof, err := rp.Profile(cfg.Device, cfg.Format, xExt, reg, cfg.Workers)
		if err != nil {
			return err
		}
		rl := telemetry.Li("rank", c.Rank())
		reg.Gauge("distmv_rank_local_rows", rl).Set(float64(nloc))
		reg.Gauge("distmv_rank_halo_elems", rl).Set(float64(rp.HaloSize()))
		reg.Gauge("distmv_rank_send_elems", rl).Set(float64(rp.SendElems()))
		reg.Gauge("distmv_rank_neighbors", rl).Set(float64(rp.Neighbors()))

		it := &iterState{
			c: c, rp: rp, prof: prof, cfg: cfg, x: xExt[:nloc], want: xExt[nloc:],
			mode: mode, spans: cfg.Spans,
		}

		if err := c.Barrier(); err != nil {
			return err
		}
		start := c.Clock()
		for n := 0; n < cfg.Iterations; n++ {
			it.iter = n
			recordEvents := c.Rank() == 0 && n == 0
			var events []Event
			switch mode {
			case VectorMode:
				events, err = it.vectorMode(n, recordEvents)
			case NaiveOverlap:
				events, err = it.naiveOverlap(n, recordEvents)
			case TaskMode:
				events, err = it.taskMode(n, recordEvents)
			default:
				err = fmt.Errorf("distmv: unknown mode %d", mode)
			}
			if err != nil {
				return err
			}
			if recordEvents {
				res.Timeline = events
			}
		}
		end, err := c.AllreduceMax(c.Clock())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			totalSeconds = end - start
		}

		// Publish per-rank outputs (disjoint slices, synchronized by
		// the run's completion).
		copy(res.Y[rp.RowLo:rp.RowHi], prof.Y)
		res.Ranks[c.Rank()] = RankReport{
			Rank:      c.Rank(),
			LocalRows: nloc,
			HaloElems: rp.HaloSize(),
			SendElems: rp.SendElems(),
			Neighbors: rp.Neighbors(),
			Local:     prof.Local,
			NonLocal:  prof.NonLocal,
			Merged:    prof.Merged,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Seconds = totalSeconds
	res.PerIterSeconds = totalSeconds / float64(cfg.Iterations)
	if totalSeconds > 0 {
		res.GFlops = 2 * float64(res.GlobalNnz) * float64(cfg.Iterations) / totalSeconds / 1e9
	}
	runLbl := []telemetry.Label{
		telemetry.L("mode", mode.Slug()),
		telemetry.L("format", cfg.Format.String()),
		telemetry.Li("ranks", p),
	}
	reg.Help("distmv_runs_total", "distributed spMVM benchmark runs")
	reg.Counter("distmv_runs_total", runLbl...).Inc()
	reg.Help("distmv_iterations_total", "timed spMVM iterations executed")
	reg.Counter("distmv_iterations_total", runLbl...).Add(float64(cfg.Iterations))
	reg.Help("distmv_gflops", "aggregate useful GF/s of the last run (Fig. 5)")
	reg.Gauge("distmv_gflops", runLbl...).Set(res.GFlops)
	reg.Help("distmv_per_iter_seconds", "virtual wallclock per spMVM iteration of the last run")
	reg.Gauge("distmv_per_iter_seconds", runLbl...).Set(res.PerIterSeconds)
	return res, nil
}

// iterState carries one rank's loop-invariant data through the
// per-iteration choreographies.
type iterState struct {
	c    *mpi.Comm
	rp   *RankProblem
	prof *RankProfile
	cfg  Config
	x    []float64 // this rank's local x values
	want []float64 // expected halo values, for verification
	mode Mode
	// spans (nil = off) collects every rank's phase spans; iter is the
	// current timed iteration, stamped into each span's args.
	spans *telemetry.SpanLog
	iter  int
}

// laneCat maps a timeline lane to its trace category: the host lane
// carries communication work, the gpu lane kernel and PCIe work.
func laneCat(lane string) string {
	if lane == "gpu" {
		return "gpu"
	}
	return "comm"
}

// emit records e into the run's span log (when attached) with the
// rank, category, and iteration context the Fig. 4 Event type omits.
func (s *iterState) emit(e Event) {
	if s.spans == nil {
		return
	}
	s.spans.Add(telemetry.Span{
		Proc:  s.c.Rank(),
		Lane:  e.Lane,
		Cat:   laneCat(e.Lane),
		Name:  e.Name,
		Start: e.Start,
		End:   e.End,
		Args: map[string]string{
			"iteration": strconv.Itoa(s.iter),
			"mode":      s.mode.Slug(),
			"format":    s.cfg.Format.String(),
		},
	})
}

// gatherSeconds models the "local gather" of Fig. 4: packing the
// outgoing x elements into contiguous send buffers on the host.
func (s *iterState) gatherSeconds() float64 {
	return float64(8*s.rp.SendElems()) / s.cfg.HostGatherBW
}

// postExchange posts all receives and sends for iteration n and
// returns the requests (receives first). Payloads are freshly gathered
// x values — the real data of the distributed multiplication.
func (s *iterState) postExchange(n int) ([]*mpi.Request, []*mpi.Request) {
	var recvs, sends []*mpi.Request
	for o := 0; o < s.rp.P; o++ {
		if _, ok := s.rp.RecvCount[o]; ok {
			recvs = append(recvs, s.c.Irecv(o, n))
		}
	}
	for d := 0; d < s.rp.P; d++ {
		idx, ok := s.rp.SendIdx[d]
		if !ok {
			continue
		}
		buf := make([]float64, len(idx))
		for k, i := range idx {
			buf[k] = s.x[i]
		}
		sends = append(sends, s.c.Isend(d, n, buf, int64(8*len(buf))))
	}
	return recvs, sends
}

// absorbHalo verifies the received payloads against the expected halo
// values.
func (s *iterState) absorbHalo(recvs []*mpi.Request) error {
	for _, r := range recvs {
		m := r.Message
		vals, ok := m.Payload.([]float64)
		if !ok {
			return fmt.Errorf("distmv: rank %d got %T from %d", s.c.Rank(), m.Payload, m.Src)
		}
		off, ok := s.rp.HaloOffset[m.Src]
		if !ok {
			return fmt.Errorf("distmv: rank %d: unexpected sender %d", s.c.Rank(), m.Src)
		}
		for k, v := range vals {
			if s.want[off+k] != v {
				return fmt.Errorf("distmv: rank %d: halo value %d from %d is %g, want %g",
					s.c.Rank(), off+k, m.Src, v, s.want[off+k])
			}
		}
	}
	return nil
}

// span runs f, logs the covered virtual duration as a telemetry span,
// and returns it as a named Fig. 4 event.
func (s *iterState) span(lane, name string, f func()) Event {
	e := Event{Lane: lane, Name: name, Start: s.c.Clock()}
	f()
	e.End = s.c.Clock()
	s.emit(e)
	return e
}

// vectorMode: gather → exchange → upload full RHS → single-step
// kernel → download. Everything serialized (§III-A, first bullet).
func (s *iterState) vectorMode(n int, record bool) ([]Event, error) {
	c, link := s.c, s.cfg.Link
	var ev []Event
	add := func(e Event) {
		if record {
			ev = append(ev, e)
		}
	}
	add(s.span("host", "local gather", func() { c.Advance(s.gatherSeconds()) }))
	var recvs, sends []*mpi.Request
	add(s.span("host", "MPI_Isend/Irecv", func() { recvs, sends = s.postExchange(n) }))
	var err error
	add(s.span("host", "MPI_Waitall", func() {
		if err = c.Waitall(append(append([]*mpi.Request{}, sends...), recvs...)); err == nil {
			err = s.absorbHalo(recvs)
		}
	}))
	if err != nil {
		return nil, err
	}
	nloc := s.rp.LocalRows()
	add(s.span("gpu", "upload RHS", func() {
		c.Advance(link.TransferSeconds(int64(8 * (nloc + s.rp.HaloSize()))))
	}))
	add(s.span("gpu", "spMVM", func() { c.Advance(s.prof.Merged.KernelSeconds) }))
	add(s.span("gpu", "download LHS", func() { c.Advance(link.TransferSeconds(int64(8 * nloc))) }))
	return ev, nil
}

// naiveOverlap: nonblocking MPI posted around the local kernel
// (§III-A, second bullet). Whether any overlap actually happens is
// decided by Fabric.AsyncProgress.
func (s *iterState) naiveOverlap(n int, record bool) ([]Event, error) {
	c, link := s.c, s.cfg.Link
	var ev []Event
	add := func(e Event) {
		if record {
			ev = append(ev, e)
		}
	}
	add(s.span("host", "local gather", func() { c.Advance(s.gatherSeconds()) }))
	var recvs, sends []*mpi.Request
	add(s.span("host", "MPI_Isend/Irecv", func() { recvs, sends = s.postExchange(n) }))
	nloc := s.rp.LocalRows()
	add(s.span("gpu", "upload RHS", func() { c.Advance(link.TransferSeconds(int64(8 * nloc))) }))
	add(s.span("gpu", "local spMVM", func() { c.Advance(s.prof.Local.KernelSeconds) }))
	var err error
	add(s.span("host", "MPI_Waitall", func() {
		if err = c.Waitall(append(append([]*mpi.Request{}, sends...), recvs...)); err == nil {
			err = s.absorbHalo(recvs)
		}
	}))
	if err != nil {
		return nil, err
	}
	add(s.span("gpu", "upload halo", func() { c.Advance(link.TransferSeconds(int64(8 * s.rp.HaloSize()))) }))
	add(s.span("gpu", "non-local spMVM", func() { c.Advance(s.prof.NonLocal.KernelSeconds) }))
	add(s.span("gpu", "download LHS", func() { c.Advance(link.TransferSeconds(int64(8 * nloc))) }))
	return ev, nil
}

// taskMode: thread 0 drives MPI while the GPU computes the local part
// (Fig. 4); the two timelines join before the non-local part.
func (s *iterState) taskMode(n int, record bool) ([]Event, error) {
	c, link := s.c, s.cfg.Link
	var ev []Event
	add := func(e Event) {
		if record {
			ev = append(ev, e)
		}
	}
	t0 := c.Clock()

	// Communication thread: gather, post, and immediately drive the
	// transfers to completion (this is what the dedicated thread is
	// for — reliably asynchronous communication).
	add(s.span("host", "local gather", func() { c.Advance(s.gatherSeconds()) }))
	var recvs, sends []*mpi.Request
	add(s.span("host", "MPI_Isend/Irecv", func() { recvs, sends = s.postExchange(n) }))
	var err error
	add(s.span("host", "MPI_Waitall", func() {
		if err = c.Waitall(append(append([]*mpi.Request{}, sends...), recvs...)); err == nil {
			err = s.absorbHalo(recvs)
		}
	}))
	if err != nil {
		return nil, err
	}

	// GPU thread, concurrent from t0: upload local RHS, local kernel.
	nloc := s.rp.LocalRows()
	up := link.TransferSeconds(int64(8 * nloc))
	gpuDone := t0 + up + s.prof.Local.KernelSeconds
	upEv := Event{Lane: "gpu", Name: "upload RHS", Start: t0, End: t0 + up}
	locEv := Event{Lane: "gpu", Name: "local spMVM", Start: t0 + up, End: gpuDone}
	s.emit(upEv)
	s.emit(locEv)
	if record {
		ev = append(ev, upEv, locEv)
	}
	// Join: the non-local part needs both the halo and the GPU.
	if gpuDone > c.Clock() {
		c.SetClock(gpuDone)
	}
	add(s.span("gpu", "upload halo", func() { c.Advance(link.TransferSeconds(int64(8 * s.rp.HaloSize()))) }))
	add(s.span("gpu", "non-local spMVM", func() { c.Advance(s.prof.NonLocal.KernelSeconds) }))
	add(s.span("gpu", "download LHS", func() { c.Advance(link.TransferSeconds(int64(8 * nloc))) }))
	return ev, nil
}

// VerifyAgainstSerial compares a distributed result with the serial
// reference (computed by the default host kernel, which is
// bit-identical to naive CRS), returning the maximum relative error.
func VerifyAgainstSerial(a *matrix.CSR[float64], x, y []float64) (float64, error) {
	ref := make([]float64, a.NRows)
	if err := hostkernel.MulVec(a, ref, x); err != nil {
		return 0, err
	}
	maxRel := 0.0
	for i := range ref {
		d := math.Abs(y[i] - ref[i])
		scale := 1 + math.Abs(ref[i])
		if rel := d / scale; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel, nil
}
