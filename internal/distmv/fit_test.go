package distmv

import (
	"errors"
	"testing"

	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
)

func TestCheckFitAgainstRealFootprints(t *testing.T) {
	m := matgen.Banded(3000, 5, 25, 200, 1)
	pt, err := PartitionByNnz(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := Distribute(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := CheckFit(problems, gpu.TeslaC2050(), FormatELLPACKR)
	if err != nil {
		t.Fatalf("small problem should fit: %v", err)
	}
	// The estimate must track the true format footprint closely.
	for i, rp := range problems {
		want := formats.NewELLPACKR(rp.Local).FootprintBytes() +
			formats.NewELLPACKR(rp.NonLocal).FootprintBytes()
		got := reports[i].FootprintBytes
		if got < want || got > want+int64(8*(rp.LocalRows()*2+rp.HaloSize()))+1024 {
			t.Errorf("rank %d: estimated %d, true format bytes %d", i, got, want)
		}
	}

	// pJDS estimate stays at or below ELLPACK-R's for the same data.
	pjReports, err := CheckFit(problems, gpu.TeslaC2050(), FormatPJDS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		if pjReports[i].FootprintBytes > reports[i].FootprintBytes {
			t.Errorf("rank %d: pJDS estimate above ELLPACK-R", i)
		}
	}
}

func TestCheckFitRejectsTinyDevice(t *testing.T) {
	m := matgen.Banded(3000, 5, 25, 200, 1)
	pt, _ := PartitionByNnz(m, 2)
	problems, err := Distribute(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	tiny := gpu.TeslaC2050()
	tiny.MemBytes = DeviceReserveBytes + 1024 // nothing left for data
	_, err = CheckFit(problems, tiny, FormatELLPACKR)
	if !errors.Is(err, ErrDeviceMemory) {
		t.Fatalf("want ErrDeviceMemory, got %v", err)
	}
}

// TestRunSpMVMFitGate reproduces the Fig. 5b constraint mechanism: a
// problem too big for the device memory is refused before any
// simulation, and admitted once enough nodes share it.
func TestRunSpMVMFitGate(t *testing.T) {
	m := matgen.Banded(4000, 10, 30, 200, 2)
	x := testVec(m.NCols)
	dev := gpu.TeslaC2050()
	// Shrink the device so the matrix fits on 4 nodes but not on 1.
	one, err := PartitionByNnz(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := Distribute(m, one)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CheckFit(probs, dev, FormatELLPACKR)
	if err != nil {
		t.Fatal(err)
	}
	// Usable memory (after the ECC and runtime reservations) lands at
	// 3/4 of the single-node footprint: P=1 refused, P=4 admitted.
	dev.MemBytes = (DeviceReserveBytes + full[0].FootprintBytes*3/4) * 8 / 7

	if _, err := RunSpMVM(m, x, 1, TaskMode, Config{Iterations: 1, Device: dev}); !errors.Is(err, ErrDeviceMemory) {
		t.Fatalf("P=1 should be refused, got %v", err)
	}
	res, err := RunSpMVM(m, x, 4, TaskMode, Config{Iterations: 1, Device: dev})
	if err != nil {
		t.Fatalf("P=4 should fit: %v", err)
	}
	if rel, _ := VerifyAgainstSerial(m, x, res.Y); rel > 1e-10 {
		t.Errorf("P=4 result error %g", rel)
	}
	// SkipFitCheck overrides the gate.
	if _, err := RunSpMVM(m, x, 1, TaskMode, Config{Iterations: 1, Device: dev, SkipFitCheck: true}); err != nil {
		t.Fatalf("SkipFitCheck should admit P=1: %v", err)
	}
}
