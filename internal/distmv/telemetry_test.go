package distmv

import (
	"bytes"
	"math"
	"testing"

	"pjds/internal/gpu"
	"pjds/internal/telemetry"
)

// runInstrumented executes one TaskMode run with a fresh registry and
// span log and returns all three.
func runInstrumented(t *testing.T, iters int) (*Result, *telemetry.Registry, *telemetry.SpanLog) {
	t.Helper()
	m := testMatrix(t)
	x := testVec(m.NCols)
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog()
	res, err := RunSpMVM(m, x, 3, TaskMode, Config{
		Iterations: iters, Telemetry: reg, Spans: spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, reg, spans
}

// TestRunSpMVMTelemetryCrossCheck is the acceptance cross-check: the
// per-rank, per-phase kernel counters must equal the RankProfile stats
// the run reports, and the MPI byte counters must equal the halo
// structure times the iteration count.
func TestRunSpMVMTelemetryCrossCheck(t *testing.T) {
	const iters = 2
	res, reg, _ := runInstrumented(t, iters)

	for _, rr := range res.Ranks {
		rl := telemetry.Li("rank", rr.Rank)
		for phase, st := range map[string]*gpu.KernelStats{
			"local":     rr.Local,
			"non-local": rr.NonLocal,
			"merged":    rr.Merged,
		} {
			lbl := []telemetry.Label{
				telemetry.L("kernel", st.Kernel),
				telemetry.L("device", st.Device),
				rl,
				telemetry.L("phase", phase),
			}
			if got := reg.Counter("gpu_kernel_nnz_total", lbl...).Value(); got != float64(st.Nnz) {
				t.Errorf("rank %d %s: nnz counter %g, stats %d", rr.Rank, phase, got, st.Nnz)
			}
			if got := reg.Counter("gpu_kernel_useful_flops_total", lbl...).Value(); got != float64(st.UsefulFlops) {
				t.Errorf("rank %d %s: flops counter %g, stats %d", rr.Rank, phase, got, st.UsefulFlops)
			}
			for stream, want := range map[string]int64{
				"val": st.BytesVal, "idx": st.BytesIdx, "rhs": st.BytesRHS,
				"lhs": st.BytesLHS, "meta": st.BytesMeta,
			} {
				got := reg.Counter("gpu_kernel_bytes_total",
					append([]telemetry.Label{telemetry.L("stream", stream)}, lbl...)...).Value()
				if got != float64(want) {
					t.Errorf("rank %d %s: bytes{%s} counter %g, stats %d", rr.Rank, phase, stream, got, want)
				}
			}
			if got := reg.Gauge("gpu_kernel_alpha", lbl...).Value(); got != st.Alpha {
				t.Errorf("rank %d %s: alpha gauge %g, stats %g", rr.Rank, phase, got, st.Alpha)
			}
			gf := reg.Gauge("gpu_kernel_gflops", lbl...).Value()
			if math.Abs(gf-st.GFlops) > 1e-9*math.Abs(st.GFlops) {
				t.Errorf("rank %d %s: gflops gauge %g, stats %g", rr.Rank, phase, gf, st.GFlops)
			}
		}

		// Halo structure gauges and wire traffic.
		if got := reg.Gauge("distmv_rank_send_elems", rl).Value(); got != float64(rr.SendElems) {
			t.Errorf("rank %d: send_elems gauge %g, report %d", rr.Rank, got, rr.SendElems)
		}
		wantBytes := float64(8 * rr.SendElems * iters)
		if got := reg.Counter("mpi_send_bytes_total", rl).Value(); got != wantBytes {
			t.Errorf("rank %d: mpi_send_bytes_total %g, want %g", rr.Rank, got, wantBytes)
		}
	}

	// Run-level series.
	runLbl := []telemetry.Label{
		telemetry.L("mode", TaskMode.Slug()),
		telemetry.L("format", res.Format.String()),
		telemetry.Li("ranks", res.P),
	}
	if got := reg.Counter("distmv_iterations_total", runLbl...).Value(); got != float64(iters) {
		t.Errorf("distmv_iterations_total = %g", got)
	}
	if got := reg.Gauge("distmv_gflops", runLbl...).Value(); got != res.GFlops {
		t.Errorf("distmv_gflops = %g, result %g", got, res.GFlops)
	}
}

// TestRunSpMVMSpans checks that every rank contributes spans on both
// the comm and gpu categories, in every mode, and that span times are
// sane.
func TestRunSpMVMSpans(t *testing.T) {
	m := testMatrix(t)
	x := testVec(m.NCols)
	for _, mode := range Modes() {
		spans := telemetry.NewSpanLog()
		if _, err := RunSpMVM(m, x, 3, mode, Config{
			Iterations: 2, Telemetry: telemetry.NewRegistry(), Spans: spans,
		}); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		seen := map[int]map[string]bool{}
		for _, s := range spans.Spans() {
			if s.End < s.Start {
				t.Errorf("%s: span %q ends before it starts", mode, s.Name)
			}
			if seen[s.Proc] == nil {
				seen[s.Proc] = map[string]bool{}
			}
			seen[s.Proc][s.Cat] = true
			if s.Cat == "net" {
				// mpi-lane spans carry message args, not the mode.
				continue
			}
			if s.Args["mode"] != mode.Slug() {
				t.Errorf("%s: span mode arg %q", mode, s.Args["mode"])
			}
		}
		for r := 0; r < 3; r++ {
			if !seen[r]["comm"] || !seen[r]["gpu"] {
				t.Errorf("%s: rank %d cats = %v", mode, r, seen[r])
			}
		}
	}
}

// TestRunSpMVMTelemetryDeterministic runs the same instrumented
// benchmark twice: both Prometheus dumps and span logs must be
// byte-identical despite the concurrent rank goroutines.
func TestRunSpMVMTelemetryDeterministic(t *testing.T) {
	dump := func() ([]byte, []telemetry.Span) {
		_, reg, spans := runInstrumented(t, 2)
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), spans.Spans()
	}
	b1, s1 := dump()
	b2, s2 := dump()
	if !bytes.Equal(b1, b2) {
		t.Error("Prometheus dumps differ between identical runs")
	}
	if len(s1) != len(s2) {
		t.Fatalf("span counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		a, b := s1[i], s2[i]
		if a.Proc != b.Proc || a.Lane != b.Lane || a.Name != b.Name || a.Start != b.Start || a.End != b.End {
			t.Fatalf("span %d differs: %+v vs %+v", i, a, b)
		}
	}
}
