package distmv

import (
	"errors"
	"fmt"
	"sort"

	"pjds/internal/core"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matrix"
)

// ErrDeviceMemory reports that a rank's share of the problem does not
// fit its GPU's memory — the reason Fig. 5b starts at five nodes
// ("Due to memory restrictions on the C2050 cards it was not possible
// to run the UHBR case on fewer than five nodes").
var ErrDeviceMemory = errors.New("distmv: problem does not fit device memory")

// DeviceReserveBytes approximates the CUDA context and runtime
// allocations that are unavailable to user data on a real board.
const DeviceReserveBytes = 150 << 20

// FitReport describes one rank's device-memory demand.
type FitReport struct {
	Rank           int
	FootprintBytes int64
	UsableBytes    int64
	Fits           bool
}

// CheckFit estimates every rank's device footprint for the given
// format (matrix data in device format, RHS + halo + LHS vectors) and
// compares it against the device's usable memory. It needs only the
// row-length structure, not a format instance, so it is cheap enough
// to run before committing to a node count.
func CheckFit(problems []*RankProblem, dev *gpu.Device, kind FormatKind) ([]FitReport, error) {
	usable := dev.UsableMemBytes() - DeviceReserveBytes
	reports := make([]FitReport, len(problems))
	var firstBad *FitReport
	for i, rp := range problems {
		fp := estimateFootprint(rp.Local, kind) +
			estimateFootprint(rp.NonLocal, kind) +
			int64(8*(rp.LocalRows()*2+rp.HaloSize())) // x, y, halo buffer
		reports[i] = FitReport{
			Rank:           rp.Rank,
			FootprintBytes: fp,
			UsableBytes:    usable,
			Fits:           fp <= usable,
		}
		if !reports[i].Fits && firstBad == nil {
			firstBad = &reports[i]
		}
	}
	if firstBad != nil {
		return reports, fmt.Errorf("%w: rank %d needs %d MB of %d MB usable on %s (%s)",
			ErrDeviceMemory, firstBad.Rank, firstBad.FootprintBytes>>20, usable>>20, dev.Name, kind)
	}
	return reports, nil
}

// estimateFootprint computes a format's device bytes from the
// row-length structure alone (double precision).
func estimateFootprint(m *matrix.CSR[float64], kind FormatKind) int64 {
	n := m.NRows
	switch kind {
	case FormatPJDS:
		// Sorted row lengths, padded per block of the default height.
		lens := make([]int, n)
		for i := range lens {
			lens[i] = m.RowLen(i)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(lens)))
		br := core.DefaultBlockHeight
		var stored int64
		maxLen := 0
		for b := 0; b < n; b += br {
			// Every block, including the final partial one, is padded
			// to br rows at the length of its longest row.
			stored += int64(lens[b]) * int64(br)
			if lens[b] > maxLen {
				maxLen = lens[b]
			}
		}
		return stored*12 + int64(maxLen+1)*4 + int64(n)*8 // val+idx, col_start, rowLen+perm
	default: // ELLPACK-R
		npad := ((n + formats.WarpSize - 1) / formats.WarpSize) * formats.WarpSize
		return int64(npad)*int64(m.MaxRowLen())*12 + int64(npad)*4
	}
}
