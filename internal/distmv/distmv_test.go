package distmv

import (
	"math"
	"testing"

	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/simnet"
)

func testMatrix(t *testing.T) *matrix.CSR[float64] {
	t.Helper()
	return matgen.Banded(4000, 5, 25, 300, 42)
}

func testVec(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.01*float64(i)) + 1
	}
	return x
}

func TestPartitionByNnz(t *testing.T) {
	m := matgen.PowerLaw(1000, 2, 100, 3, 1)
	pt, err := PartitionByNnz(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Ranks() != 7 {
		t.Fatalf("ranks = %d", pt.Ranks())
	}
	if pt.Bounds[0] != 0 || pt.Bounds[7] != 1000 {
		t.Fatalf("bounds = %v", pt.Bounds)
	}
	total := m.Nnz()
	for r := 0; r < 7; r++ {
		lo, hi := pt.Range(r)
		if hi <= lo {
			t.Fatalf("rank %d empty: [%d,%d)", r, lo, hi)
		}
		nnz := m.RowPtr[hi] - m.RowPtr[lo]
		if frac := float64(nnz) / float64(total); frac > 0.5 {
			t.Errorf("rank %d carries %.2f of the non-zeros", r, frac)
		}
	}
}

func TestPartitionOwner(t *testing.T) {
	pt := Partition{Bounds: []int{0, 10, 25, 40}}
	cases := map[int]int{0: 0, 9: 0, 10: 1, 24: 1, 25: 2, 39: 2}
	for idx, want := range cases {
		if got := pt.Owner(idx); got != want {
			t.Errorf("Owner(%d) = %d, want %d", idx, got, want)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m := matgen.Stencil2D(4, 4)
	if _, err := PartitionByNnz(m, 0); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := PartitionByNnz(m, 17); err == nil {
		t.Error("more ranks than rows accepted")
	}
}

func TestDistributeStructure(t *testing.T) {
	m := testMatrix(t)
	pt, err := PartitionByNnz(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := Distribute(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	var nnzSum int
	for _, rp := range problems {
		nnzSum += rp.Local.Nnz() + rp.NonLocal.Nnz()
		// Halo sorted and grouped by owner.
		for k := 1; k < len(rp.HaloCols); k++ {
			if rp.HaloCols[k-1] >= rp.HaloCols[k] {
				t.Fatalf("rank %d halo not strictly sorted", rp.Rank)
			}
		}
		// No halo element inside the own range.
		for _, c := range rp.HaloCols {
			if int(c) >= rp.RowLo && int(c) < rp.RowHi {
				t.Fatalf("rank %d halo contains own column %d", rp.Rank, c)
			}
		}
		// Receive counts add up to the halo size.
		sum := 0
		for _, cnt := range rp.RecvCount {
			sum += cnt
		}
		if sum != rp.HaloSize() {
			t.Fatalf("rank %d recv counts %d != halo %d", rp.Rank, sum, rp.HaloSize())
		}
	}
	if nnzSum != m.Nnz() {
		t.Fatalf("distributed nnz %d != %d", nnzSum, m.Nnz())
	}
	// Send lists mirror receive lists.
	for _, rp := range problems {
		for o, cnt := range rp.RecvCount {
			if got := len(problems[o].SendIdx[rp.Rank]); got != cnt {
				t.Fatalf("rank %d expects %d from %d, sender plans %d", rp.Rank, cnt, o, got)
			}
		}
	}
}

func TestDistributeRejectsRectangular(t *testing.T) {
	coo := matrix.NewCOO[float64](4, 6)
	coo.Add(0, 5, 1)
	if _, err := Distribute(coo.ToCSR(), Partition{Bounds: []int{0, 2, 4}}); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestMergedSliceEquivalence(t *testing.T) {
	m := testMatrix(t)
	pt, _ := PartitionByNnz(m, 4)
	problems, err := Distribute(m, pt)
	if err != nil {
		t.Fatal(err)
	}
	x := testVec(m.NCols)
	for _, rp := range problems {
		nloc := rp.LocalRows()
		xExt := make([]float64, nloc+rp.HaloSize())
		copy(xExt, x[rp.RowLo:rp.RowHi])
		for s, c := range rp.HaloCols {
			xExt[nloc+s] = x[c]
		}
		y := make([]float64, nloc)
		if err := rp.MergedSlice().MulVec(y, xExt); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nloc; i++ {
			var want float64
			cols, vals := m.Row(rp.RowLo + i)
			for k, c := range cols {
				want += vals[k] * x[c]
			}
			if math.Abs(y[i]-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("rank %d merged row %d = %g, want %g", rp.Rank, i, y[i], want)
			}
		}
	}
}

// commHeavyMatrix has scattered columns, so halos are large and the
// communication window rivals the local kernel — the regime where the
// §III-A mode distinctions matter.
func commHeavyMatrix() *matrix.CSR[float64] {
	return matgen.Random(20000, 10, 30, 11)
}

func TestRunAllModesCorrectAndOrdered(t *testing.T) {
	m := commHeavyMatrix()
	x := testVec(m.NCols)
	cfg := Config{Iterations: 2}
	perf := map[Mode]float64{}
	for _, mode := range Modes() {
		res, err := RunSpMVM(m, x, 6, mode, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		rel, err := VerifyAgainstSerial(m, x, res.Y)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 1e-10 {
			t.Errorf("%v: max relative error %g", mode, rel)
		}
		if res.GFlops <= 0 || res.PerIterSeconds <= 0 {
			t.Errorf("%v: degenerate performance %+v", mode, res.GFlops)
		}
		perf[mode] = res.GFlops
	}
	// §III-B: task mode beats both vector modes; naive overlap does
	// not beat plain vector mode without async progress (allow ties).
	if perf[TaskMode] < perf[VectorMode] || perf[TaskMode] < perf[NaiveOverlap] {
		t.Errorf("task mode not fastest: %v", perf)
	}
}

func TestNaiveOverlapGainsWithAsyncProgress(t *testing.T) {
	m := testMatrix(t)
	x := testVec(m.NCols)
	sync := simnet.QDRInfiniBand()
	async := simnet.QDRInfiniBand()
	async.AsyncProgress = true
	rSync, err := RunSpMVM(m, x, 6, NaiveOverlap, Config{Iterations: 2, Fabric: sync})
	if err != nil {
		t.Fatal(err)
	}
	rAsync, err := RunSpMVM(m, x, 6, NaiveOverlap, Config{Iterations: 2, Fabric: async})
	if err != nil {
		t.Fatal(err)
	}
	if rAsync.GFlops < rSync.GFlops {
		t.Errorf("async progress slower: %.2f vs %.2f", rAsync.GFlops, rSync.GFlops)
	}
}

func TestRunSingleRank(t *testing.T) {
	m := matgen.Banded(800, 4, 12, 50, 7)
	x := testVec(800)
	res, err := RunSpMVM(m, x, 1, TaskMode, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := VerifyAgainstSerial(m, x, res.Y)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-12 {
		t.Errorf("single rank error %g", rel)
	}
	if res.Ranks[0].HaloElems != 0 || res.Ranks[0].Neighbors != 0 {
		t.Errorf("single rank has halo: %+v", res.Ranks[0])
	}
}

func TestRunPJDSFormat(t *testing.T) {
	m := testMatrix(t)
	x := testVec(m.NCols)
	res, err := RunSpMVM(m, x, 4, TaskMode, Config{Iterations: 1, Format: FormatPJDS})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := VerifyAgainstSerial(m, x, res.Y)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-10 {
		t.Errorf("pJDS distributed error %g", rel)
	}
	if res.Ranks[0].Local.Kernel != "pJDS" {
		t.Errorf("local kernel = %q", res.Ranks[0].Local.Kernel)
	}
}

func TestTimelineShape(t *testing.T) {
	m := commHeavyMatrix()
	x := testVec(m.NCols)
	res, err := RunSpMVM(m, x, 4, TaskMode, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	names := map[string]bool{}
	var commEnd, localStart, localEnd, nonLocalStart float64
	for _, e := range res.Timeline {
		if e.End < e.Start {
			t.Errorf("event %q ends before it starts", e.Name)
		}
		names[e.Lane+"/"+e.Name] = true
		switch e.Name {
		case "MPI_Waitall":
			commEnd = e.End
		case "local spMVM":
			localStart, localEnd = e.Start, e.End
		case "non-local spMVM":
			nonLocalStart = e.Start
		}
	}
	for _, want := range []string{
		"host/local gather", "host/MPI_Isend/Irecv", "host/MPI_Waitall",
		"gpu/upload RHS", "gpu/local spMVM", "gpu/upload halo",
		"gpu/non-local spMVM", "gpu/download LHS",
	} {
		if !names[want] {
			t.Errorf("timeline missing %q (have %v)", want, names)
		}
	}
	// Fig. 4: the communication window and the local kernel overlap;
	// the non-local kernel starts only after both are done.
	if localStart >= commEnd {
		t.Errorf("no overlap: local kernel starts at %g, comm ends %g", localStart, commEnd)
	}
	if nonLocalStart+1e-15 < math.Max(commEnd, localEnd) {
		t.Errorf("non-local kernel at %g before join of %g/%g", nonLocalStart, commEnd, localEnd)
	}
}

func TestResultBreakdown(t *testing.T) {
	m := commHeavyMatrix()
	x := testVec(m.NCols)
	res, err := RunSpMVM(m, x, 4, NaiveOverlap, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown()
	for _, phase := range []string{"local spMVM", "non-local spMVM", "MPI_Waitall", "upload RHS", "download LHS"} {
		if bd[phase] <= 0 {
			t.Errorf("phase %q missing from breakdown: %v", phase, bd)
		}
	}
	// Naive overlap is fully serialized: phases sum to ≈ one iteration.
	total := 0.0
	for _, v := range bd {
		total += v
	}
	if total > res.PerIterSeconds*1.01 {
		t.Errorf("serial phases sum to %g > iteration %g", total, res.PerIterSeconds)
	}
}

func TestStrongScalingImprovesThenSaturates(t *testing.T) {
	// A larger banded matrix should show near-linear scaling at small
	// P with diminishing returns later.
	m := matgen.Banded(20000, 8, 24, 400, 9)
	x := testVec(m.NCols)
	var prev float64
	for _, p := range []int{1, 2, 4, 8} {
		res, err := RunSpMVM(m, x, p, TaskMode, Config{Iterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.GFlops <= prev {
			t.Errorf("no speedup at P=%d: %.2f after %.2f", p, res.GFlops, prev)
		}
		prev = res.GFlops
	}
}

// TestMultiGPUPerNode: packing 4 GPUs per node moves most halo traffic
// onto the intra-node fabric — on a locality-heavy matrix this beats
// the one-GPU-per-node layout of the paper's cluster.
func TestMultiGPUPerNode(t *testing.T) {
	m := matgen.Banded(20000, 8, 24, 2500, 10)
	x := testVec(m.NCols)
	one, err := RunSpMVM(m, x, 8, TaskMode, Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunSpMVM(m, x, 8, TaskMode, Config{Iterations: 2, GPUsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rel, _ := VerifyAgainstSerial(m, x, four.Y); rel > 1e-10 {
		t.Fatalf("multi-GPU result error %g", rel)
	}
	if four.GFlops < one.GFlops {
		t.Errorf("4 GPUs/node %.2f GF/s below 1 GPU/node %.2f", four.GFlops, one.GFlops)
	}
}

func TestModeAndFormatStrings(t *testing.T) {
	if VectorMode.String() == "" || NaiveOverlap.String() == "" || TaskMode.String() == "" {
		t.Error("empty mode names")
	}
	if Mode(99).String() == "" || FormatKind(99).String() == "" {
		t.Error("unknown values should still render")
	}
	if FormatELLPACKR.String() != "ELLPACK-R" || FormatPJDS.String() != "pJDS" {
		t.Error("format names")
	}
}

func TestRunInputValidation(t *testing.T) {
	m := matgen.Stencil2D(10, 10)
	if _, err := RunSpMVM(m, make([]float64, 5), 2, TaskMode, Config{}); err == nil {
		t.Error("wrong x size accepted")
	}
	if _, err := RunSpMVM(m, make([]float64, 100), 0, TaskMode, Config{}); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := RunSpMVM(m, make([]float64, 100), 2, Mode(42), Config{Iterations: 1}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Device == nil || c.Link == nil || c.Fabric == nil {
		t.Fatal("defaults missing")
	}
	if c.Iterations <= 0 || c.HostGatherBW <= 0 {
		t.Fatal("scalar defaults missing")
	}
	// Scaling runs default to the Dirac node's C2050.
	if c.Device.Name != gpu.TeslaC2050().Name {
		t.Errorf("default device = %s", c.Device.Name)
	}
}
