package distmv

import (
	"fmt"

	"pjds/internal/gpu"
	"pjds/internal/matrix"
	"pjds/internal/mpi"
	"pjds/internal/pcie"
	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

// Mode selects the §III-A communication scheme.
type Mode int

// The three schemes of §III-A.
const (
	// VectorMode exchanges the halo up front and runs the whole spMVM
	// as a single kernel — the programming style of vector-parallel
	// machines, no overlap.
	VectorMode Mode = iota
	// NaiveOverlap splits the spMVM into local and non-local parts and
	// posts nonblocking MPI around the local kernel. Without
	// asynchronous progress in the MPI library (the realistic
	// default), it gains nothing over vector mode.
	NaiveOverlap
	// TaskMode dedicates a host thread to MPI so communication truly
	// overlaps the local kernel (Fig. 4).
	TaskMode
)

// Modes lists all schemes in presentation order.
func Modes() []Mode { return []Mode{VectorMode, NaiveOverlap, TaskMode} }

// String names the mode as in Fig. 5's legend.
func (m Mode) String() string {
	switch m {
	case VectorMode:
		return "Vector mode Isend/Irecv"
	case NaiveOverlap:
		return "Naive overlap"
	case TaskMode:
		return "Task mode"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Slug returns the short machine-readable mode name used as a
// telemetry label value.
func (m Mode) Slug() string {
	switch m {
	case VectorMode:
		return "vector"
	case NaiveOverlap:
		return "naive-overlap"
	case TaskMode:
		return "task"
	default:
		return fmt.Sprintf("mode-%d", int(m))
	}
}

// Config parameterizes a distributed run.
type Config struct {
	Device *gpu.Device
	Link   *pcie.Link
	Fabric *simnet.Fabric
	Format FormatKind
	// Iterations is the number of timed spMVM repetitions.
	Iterations int
	// Workers is the number of host goroutines executing each
	// simulated kernel's warps (gpu.RunOptions.Workers); 0 selects the
	// gpu package default. Any value yields bit-identical results.
	Workers int
	// HostGatherBW models the host-side gather of send buffers
	// ("local gather" in Fig. 4); 0 selects 8 GB/s.
	HostGatherBW float64
	// SkipFitCheck disables the device-memory admission check (the
	// constraint that keeps Fig. 5b's UHBR off fewer than 5 nodes).
	SkipFitCheck bool
	// GPUsPerNode places that many consecutive ranks on one physical
	// node, exchanging halos over IntraNodeFabric (nil selects the
	// shared-memory default) instead of the interconnect. 0 or 1
	// reproduces the paper's one-GPU-per-node Dirac cluster.
	GPUsPerNode int
	// IntraNodeFabric overrides the intra-node transfer model.
	IntraNodeFabric *simnet.Fabric
	// Partitioner overrides the row-block partitioning strategy
	// (nil = PartitionByNnz, the load-balanced choice of [4]).
	Partitioner func(*matrix.CSR[float64], int) (Partition, error)
	// Telemetry receives the run's metrics: per-rank kernel model
	// quantities (labelled by rank and phase), message-passing and
	// wire traffic, halo structure, and run-level performance. Nil
	// selects telemetry.Default().
	Telemetry *telemetry.Registry
	// Spans, when non-nil, receives the per-rank, per-lane phase
	// spans of every timed iteration on every rank — the generalized
	// form of Result.Timeline (which keeps only rank 0's first
	// iteration) consumed by the internal/trace exporter.
	Spans *telemetry.SpanLog
	// Faults injects wire-level faults (drops, delays, duplicates,
	// link degradation) into the halo exchanges; nil runs healthy.
	Faults simnet.Injector
	// Retry is the reliable-transport policy applied to dropped halo
	// messages (zero value = mpi.DefaultRetry).
	Retry mpi.RetryPolicy
	// HeartbeatSeconds tunes the failure detector (0 = mpi default).
	HeartbeatSeconds float64
}

func (c Config) withDefaults() Config {
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default()
	}
	if c.Device == nil {
		c.Device = gpu.TeslaC2050()
	}
	if c.Link == nil {
		c.Link = pcie.Gen2x16()
	}
	if c.Fabric == nil {
		c.Fabric = simnet.QDRInfiniBand()
	}
	if c.Iterations <= 0 {
		c.Iterations = 3
	}
	if c.HostGatherBW <= 0 {
		c.HostGatherBW = 8e9
	}
	return c
}

// Event is one block of the Fig. 4 timeline, recorded on rank 0's
// first iteration.
type Event struct {
	Lane  string // "host" (thread 0) or "gpu"
	Name  string
	Start float64
	End   float64
}

// Breakdown sums the recorded first-iteration phase durations of rank
// 0 by event name, in seconds. In task mode the host and GPU lanes
// overlap, so the parts may sum to more than the iteration wallclock.
func (r *Result) Breakdown() map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Timeline {
		out[e.Name] += e.End - e.Start
	}
	return out
}

// RankReport summarizes one rank's per-iteration cost structure.
type RankReport struct {
	Rank      int
	LocalRows int
	HaloElems int
	SendElems int
	Neighbors int
	Local     *gpu.KernelStats
	NonLocal  *gpu.KernelStats
	Merged    *gpu.KernelStats
}

// Result is the outcome of one distributed spMVM benchmark.
type Result struct {
	Mode       Mode
	Format     FormatKind
	P          int
	Iterations int
	GlobalNnz  int64
	// Seconds is the total virtual wallclock of the timed loop (max
	// over ranks); PerIterSeconds = Seconds/Iterations.
	Seconds        float64
	PerIterSeconds float64
	// GFlops is the aggregate useful performance, as plotted in Fig. 5.
	GFlops float64
	// Y is the assembled global result vector, for verification.
	Y []float64
	// Ranks reports the per-rank structure; Timeline holds rank 0's
	// first-iteration event trace (Fig. 4).
	Ranks    []RankReport
	Timeline []Event
}
