// Package pjds is the public facade of the pJDS reproduction: sparse
// matrices, the padded-Jagged-Diagonals-Storage format of Kreutzer et
// al. (IPDPS 2012) together with the formats it is evaluated against,
// a simulated Fermi-class GPU to run them on, iterative solvers that
// work in the permuted basis, and a simulated multi-GPU cluster with
// the paper's three communication schemes.
//
// The facade works in double precision, the default of the paper's
// HPC use cases; the generic single-precision implementations live in
// the internal packages and are exercised by the Table I benchmarks.
//
// Quick start:
//
//	m := pjds.Generate("sAMG", 0.1)         // a paper test matrix
//	p, _ := pjds.NewPJDS(m, pjds.Options{}) // convert to pJDS
//	dev := pjds.TeslaC2070()
//	y := make([]float64, p.NPad)
//	st, _ := pjds.RunPJDS(dev, p, y, x)     // simulate the kernel
//	fmt.Println(st.GFlops)
package pjds

import (
	"io"

	"pjds/internal/advisor"
	"pjds/internal/core"
	"pjds/internal/distmv"
	"pjds/internal/distsolver"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/mpi"
	"pjds/internal/pcie"
	"pjds/internal/simnet"
	"pjds/internal/solver"
)

// Sparse-matrix substrate (double precision).
type (
	// COO is an assembly-format sparse matrix.
	COO = matrix.COO[float64]
	// CSR is a compressed-row-storage matrix, the canonical in-memory
	// representation and correctness reference.
	CSR = matrix.CSR[float64]
	// Dense is a row-major dense matrix for small-scale verification.
	Dense = matrix.Dense[float64]
	// Perm is a permutation of row indices (new → old).
	Perm = matrix.Perm
	// Stats summarizes a matrix's sparsity structure.
	Stats = matrix.Stats
)

// NewCOO returns an empty coordinate-format matrix.
func NewCOO(rows, cols int) *COO { return matrix.NewCOO[float64](rows, cols) }

// ComputeStats scans a matrix and reports its structure.
func ComputeStats(m *CSR) Stats { return matrix.ComputeStats(m) }

// RCM returns the Reverse Cuthill-McKee bandwidth-reducing
// permutation; apply it with PermuteSymmetric before format conversion
// to improve RHS cache reuse.
func RCM(m *CSR) Perm { return matrix.RCM(m) }

// PermuteSymmetric returns P·A·Pᵀ.
func PermuteSymmetric(m *CSR, p Perm) *CSR { return matrix.PermuteSymmetric(m, p) }

// Symmetrize returns (A+Aᵀ)/2.
func Symmetrize(m *CSR) (*CSR, error) { return matrix.Symmetrize(m) }

// Diag returns the matrix diagonal.
func Diag(m *CSR) []float64 { return matrix.Diag(m) }

// ResidualNorm returns ‖b − A·x‖₂.
func ResidualNorm(m *CSR, x, b []float64) (float64, error) { return matrix.ResidualNorm(m, x, b) }

// ReadMatrixMarket parses a MatrixMarket coordinate stream.
func ReadMatrixMarket(r io.Reader) (*CSR, error) { return matrix.ReadMatrixMarket[float64](r) }

// WriteMatrixMarket writes a matrix in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, m *CSR) error { return matrix.WriteMatrixMarket(w, m) }

// Storage formats.
type (
	// PJDS is the paper's contribution: padded Jagged Diagonals
	// Storage (§II-A, Fig. 1).
	PJDS = core.PJDS[float64]
	// Options configure pJDS construction.
	Options = core.Options
	// ELLPACK is the original padded format of Fig. 2a.
	ELLPACK = formats.ELLPACK[float64]
	// ELLPACKR is ELLPACK-R (Vázquez et al.), the paper's baseline.
	ELLPACKR = formats.ELLPACKR[float64]
	// SlicedELL is the sliced-ELLPACK related-work family.
	SlicedELL = formats.SlicedELL[float64]
	// ELLRT is the T-threads-per-row ELLR-T variant.
	ELLRT = formats.ELLRT[float64]
	// BELLPACK is the blocked ELLPACK of Choi et al. (reference [2]).
	BELLPACK = formats.BELLPACK[float64]
	// Format is the common interface of all storage formats.
	Format = formats.Format[float64]
)

// NewPJDS builds the pJDS representation of m.
func NewPJDS(m *CSR, opt Options) (*PJDS, error) { return core.NewPJDS(m, opt) }

// NewJDS builds the classic unpadded JDS (pJDS with block height 1).
func NewJDS(m *CSR) (*PJDS, error) { return formats.NewJDS(m) }

// NewELLPACK builds the plain ELLPACK representation of m.
func NewELLPACK(m *CSR) *ELLPACK { return formats.NewELLPACK(m) }

// NewELLPACKR builds the ELLPACK-R representation of m.
func NewELLPACKR(m *CSR) *ELLPACKR { return formats.NewELLPACKR(m) }

// NewSlicedELL builds a sliced-ELLPACK matrix with slice height c and
// sorting window sigma.
func NewSlicedELL(m *CSR, c, sigma int) (*SlicedELL, error) {
	return formats.NewSlicedELL(m, c, sigma)
}

// NewELLRT builds an ELLR-T matrix with T threads per row.
func NewELLRT(m *CSR, threads int) (*ELLRT, error) { return formats.NewELLRT(m, threads) }

// NewBELLPACK builds a blocked-ELLPACK matrix with br×bc tiles.
func NewBELLPACK(m *CSR, br, bc int) (*BELLPACK, error) { return formats.NewBELLPACK(m, br, bc) }

// DataReduction returns 1 − stored(b)/stored(a), Table I's first row
// when a is ELLPACK and b is pJDS.
func DataReduction(a, b Format) float64 { return formats.DataReduction[float64](a, b) }

// GPU simulation.
type (
	// Device is a simulated Fermi-class GPGPU.
	Device = gpu.Device
	// KernelStats reports one simulated kernel execution.
	KernelStats = gpu.KernelStats
	// RunOptions modify a kernel execution.
	RunOptions = gpu.RunOptions
)

// TeslaC2070 returns the 6 GB Fermi board of the Table I runs.
func TeslaC2070() *Device { return gpu.TeslaC2070() }

// TeslaC2050 returns the 3 GB Dirac-cluster board of the Fig. 5 runs.
func TeslaC2050() *Device { return gpu.TeslaC2050() }

// TeslaC1060 returns the pre-Fermi board without an L2 cache.
func TeslaC1060() *Device { return gpu.TeslaC1060() }

// RunPJDS simulates the pJDS spMVM kernel (Listing 2): yp = A·x in
// the permuted basis, with transaction-level timing.
func RunPJDS(d *Device, p *PJDS, yp, x []float64) (*KernelStats, error) {
	return gpu.RunPJDS(d, p, yp, x, gpu.RunOptions{})
}

// RunELLPACKR simulates the ELLPACK-R spMVM kernel (Listing 1).
func RunELLPACKR(d *Device, e *ELLPACKR, y, x []float64) (*KernelStats, error) {
	return gpu.RunELLPACKR(d, e, y, x, gpu.RunOptions{})
}

// RunELLPACK simulates the plain ELLPACK kernel (computes on padding).
func RunELLPACK(d *Device, e *ELLPACK, y, x []float64) (*KernelStats, error) {
	return gpu.RunELLPACK(d, e, y, x, gpu.RunOptions{})
}

// RunELLRT simulates the cooperative ELLR-T kernel.
func RunELLRT(d *Device, e *ELLRT, y, x []float64) (*KernelStats, error) {
	return gpu.RunELLRT(d, e, y, x, gpu.RunOptions{})
}

// RunBELLPACK simulates the blocked-ELLPACK kernel.
func RunBELLPACK(d *Device, e *BELLPACK, y, x []float64) (*KernelStats, error) {
	return gpu.RunBELLPACK(d, e, y, x, gpu.RunOptions{})
}

// GMRES solves A·x = b for general (nonsymmetric) A with restarted
// GMRES and optional right preconditioning (nil = identity).
func GMRES(a Operator, x, b []float64, restart int, tol float64, maxIter int, pre solver.Preconditioner) (solver.GMRESResult, error) {
	return solver.GMRES(a, x, b, restart, tol, maxIter, pre)
}

// NewJacobi builds the diagonal preconditioner of m.
func NewJacobi(m *CSR) *solver.JacobiPreconditioner { return solver.NewJacobi(m) }

// BiCGSTAB solves A·x = b for general A with the stabilized
// bi-conjugate gradient method (constant memory, unlike GMRES).
func BiCGSTAB(a Operator, x, b []float64, tol float64, maxIter int, pre solver.Preconditioner) (solver.BiCGSTABResult, error) {
	return solver.BiCGSTAB(a, x, b, tol, maxIter, pre)
}

// Test matrices.

// Generate builds one of the paper's §I-C test matrices ("DLR1",
// "DLR2", "HMEp", "sAMG", "UHBR") at the given scale (1 = published
// size), with the repository's deterministic default seed.
func Generate(name string, scale float64) *CSR {
	tm, err := matgen.ByName(name)
	if err != nil {
		panic(err)
	}
	return tm.Generate(scale, 2012)
}

// Stencil2D returns the 5-point Laplacian on an nx×ny grid, a classic
// SPD solver test operator.
func Stencil2D(nx, ny int) *CSR { return matgen.Stencil2D(nx, ny) }

// Solvers.
type (
	// Operator is a linear map y = A·x.
	Operator = solver.Operator
	// PermutedPJDS runs entirely in the pJDS-permuted basis.
	PermutedPJDS = solver.PermutedPJDS
	// CGResult reports a conjugate-gradient solve.
	CGResult = solver.CGResult
	// LanczosResult reports a Lanczos eigenvalue run.
	LanczosResult = solver.LanczosResult
)

// NewPermutedPJDS builds the §II-A solver operator: symmetric pJDS
// permutation applied once, pure Listing-2 kernel inside the loop.
func NewPermutedPJDS(m *CSR, opt Options) (*PermutedPJDS, error) {
	return solver.NewPermutedPJDS(m, opt)
}

// CG solves A·x = b for SPD A.
func CG(a Operator, x, b []float64, tol float64, maxIter int) (CGResult, error) {
	return solver.CG(a, x, b, tol, maxIter)
}

// Lanczos runs k Lanczos steps and returns Ritz values.
func Lanczos(a Operator, k int, v0 []float64) (LanczosResult, error) {
	return solver.Lanczos(a, k, v0)
}

// PowerIteration finds the dominant eigenvalue of a.
func PowerIteration(a Operator, v0 []float64, tol float64, maxIter int) (solver.PowerResult, error) {
	return solver.PowerIteration(a, v0, tol, maxIter)
}

// Distributed multi-GPU spMVM (§III).
type (
	// ClusterConfig parameterizes a simulated multi-GPU run.
	ClusterConfig = distmv.Config
	// ClusterResult is the outcome of a distributed spMVM benchmark.
	ClusterResult = distmv.Result
	// Mode is a §III-A communication scheme.
	Mode = distmv.Mode
)

// The three communication schemes of §III-A.
const (
	VectorMode   = distmv.VectorMode
	NaiveOverlap = distmv.NaiveOverlap
	TaskMode     = distmv.TaskMode
)

// RunCluster executes y = A·x on p simulated GPU nodes.
func RunCluster(a *CSR, x []float64, p int, mode Mode, cfg ClusterConfig) (*ClusterResult, error) {
	return distmv.RunSpMVM(a, x, p, mode, cfg)
}

// Distributed solvers (each rank runs inside a cluster body; see
// internal/distsolver and examples/distpower).
type (
	// RankProblem is one rank's share of a distributed matrix.
	RankProblem = distmv.RankProblem
	// ClusterComm is one rank's message-passing endpoint.
	ClusterComm = mpi.Comm
)

// Distribute partitions a square matrix by non-zeros over p ranks.
func Distribute(a *CSR, p int) ([]*RankProblem, error) {
	pt, err := distmv.PartitionByNnz(a, p)
	if err != nil {
		return nil, err
	}
	return distmv.Distribute(a, pt)
}

// RunRanks executes body on p simulated ranks over the default
// interconnect, returning each rank's final virtual clock.
func RunRanks(p int, body func(*ClusterComm) error) ([]float64, error) {
	return mpi.Run(p, simnet.QDRInfiniBand(), body)
}

// DistributedCG solves A·x = b across ranks (x, b hold this rank's
// rows); call from every rank of a RunRanks body.
func DistributedCG(c *ClusterComm, rp *RankProblem, x, b []float64, tol float64, maxIter int) (distsolver.CGResult, error) {
	return distsolver.CG(c, rp, x, b, tol, maxIter)
}

// DistributedPowerIteration finds the dominant eigenvalue across
// ranks; call from every rank of a RunRanks body.
func DistributedPowerIteration(c *ClusterComm, rp *RankProblem, v0 []float64, tol float64, maxIter int) (distsolver.PowerResult, error) {
	return distsolver.PowerIteration(c, rp, v0, tol, maxIter)
}

// Recommend applies the paper's §II guidance to a matrix's structure:
// whether GPU offload pays (Eqs. 3/4) and which format to use.
func Recommend(st Stats) advisor.Recommendation { return advisor.Recommend(st, nil, nil) }

// QDRInfiniBand returns the Dirac-like interconnect model.
func QDRInfiniBand() *simnet.Fabric { return simnet.QDRInfiniBand() }

// PCIeGen2x16 returns the host↔device link model.
func PCIeGen2x16() *pcie.Link { return pcie.Gen2x16() }
