#!/bin/sh
# Perf-regression gate: compare two benchmark/report JSON artifacts
# (e.g. BENCH_PR3.json from two checkouts) with perfreport diff and
# exit non-zero when any metric moved the wrong way beyond tolerance.
#
# Every numeric leaf is compared under a relative tolerance band.
# Direction is inferred from the metric name (gflops/efficiency up is
# good, seconds/balance up is bad); metrics with unknown direction must
# stay inside the band in either direction — the simulator is
# deterministic, so unexplained drift is itself a finding.
#
# Usage: scripts/regress.sh OLD.json NEW.json [default-tol] [per-metric]
#   default-tol   relative band, default 0.02 (±2%)
#   per-metric    overrides like "gflops=0.05,per_iter_seconds=0.1"
#
# Trend mode: scripts/regress.sh trend [ARTIFACT...]
#   Gate on *sustained* cross-run regressions over the whole checked-in
#   BENCH_PR*.json trajectory (chronological) — or an explicit artifact
#   list — via perfreport -trend -gate. Set LEDGER to fold a run
#   ledger's entries in after the artifacts.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = trend ]; then
    shift
    if [ $# -eq 0 ]; then
        # BENCH_PR2.json .. BENCH_PR10.json sort correctly under -V.
        set -- $(ls BENCH_PR*.json 2>/dev/null | grep -v '\.metrics\.json$' | sort -V)
    fi
    if [ $# -lt 1 ]; then
        echo "trend mode: no BENCH_PR*.json artifacts found" >&2
        exit 2
    fi
    if [ -n "${LEDGER:-}" ]; then
        exec go run ./cmd/perfreport -trend -gate -ledger "$LEDGER" "$@"
    fi
    exec go run ./cmd/perfreport -trend -gate "$@"
fi

if [ $# -lt 2 ]; then
    echo "usage: scripts/regress.sh OLD.json NEW.json [default-tol] [per-metric]" >&2
    echo "       scripts/regress.sh trend [ARTIFACT...]" >&2
    exit 2
fi
OLD=$1
NEW=$2
TOL="${3:-0.02}"
PER_METRIC="${4:-}"

if [ -n "$PER_METRIC" ]; then
    exec go run ./cmd/perfreport diff -tol "$TOL" -tol-metric "$PER_METRIC" "$OLD" "$NEW"
fi
exec go run ./cmd/perfreport diff -tol "$TOL" "$OLD" "$NEW"
