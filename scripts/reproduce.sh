#!/bin/sh
# Regenerate every table and figure of the paper at the published
# matrix sizes (UHBR at its memory-gated 0.25 scale) into results/.
# Takes roughly half an hour on a single core; set PJDS_CACHE_DIR to
# re-use generated matrices across runs.
set -eu
cd "$(dirname "$0")/.."
mkdir -p results
go build -o /tmp/pjds-bin/ ./cmd/...
BIN=/tmp/pjds-bin

$BIN/matinfo   -demo                                              > results/fig1_full.txt
$BIN/spmvbench -fig2 -matrix sAMG -scale 1                        > results/fig2_full.txt
$BIN/histogram -scale 1                                           > results/fig3_full.txt
$BIN/spmvbench -table1 -scale 1                                   > results/table1_full.txt
$BIN/pcimodel  -scale 1                                           > results/sec2b_full.txt
$BIN/scaling   -timeline -matrix dlr1 -scale 1 -timelinenodes 8   > results/fig4_full.txt
$BIN/scaling   -matrix dlr1 -scale 1 -iters 2                     > results/fig5a_full.txt
$BIN/scaling   -matrix uhbr -scale 1 -iters 2                     > results/fig5b_full.txt
$BIN/scaling   -matrix dlr1 -scale 1 -format pjds -nodes 1,4,16,32 -iters 2 > results/outlook_pjds_full.txt
$BIN/spmvbench -outlook -scale 1                                  > results/outlook_formats_full.txt
$BIN/scaling   -weak -matrix dlr1 -nodes 1,2,4,8,16,32 -basescale 0.03 -iters 2 > results/weak_full.txt
$BIN/spmvbench -ablations -matrix sAMG -scale 0.5                 > results/ablations_full.txt
$BIN/scaling   -ablations -matrix dlr1 -scale 1                  >> results/ablations_full.txt
$BIN/papercheck -scale 1                                          > results/papercheck_full.txt

echo "all artefacts written to results/"
