#!/bin/sh
# Run the repo's performance benchmarks.
#
# Default mode: the Go micro-benchmarks, then a fixed spmvbench workload
# whose measurements land in BENCH_PR1.json (schema pjds-bench/v1: GF/s,
# derived bandwidth, code balance and alpha per matrix/format/precision/
# ECC cell).
#
# pr2 mode: the kernel-plan before/after comparison. "Before" is the
# pre-plan behaviour — every Run* call pays the full coalescing/L2
# analysis (BenchmarkPlanCompile/compile runs against a cold cache);
# "after" is the cached replay (BenchmarkPlanCompile/replay), plus the
# per-worker-count replay benchmarks. ns/op for every benchmark is
# written to BENCH_PR2.json (schema pjds-bench-pr2/v1).
#
# pr3 mode: the causal performance report. Runs the distributed
# benchmark in all three §III-A modes with span + metrics
# instrumentation and writes the critical-path attribution, overlap
# efficiency, and Eq. 1 kernel table to BENCH_PR3.json — the artifact
# scripts/regress.sh compares across checkouts.
#
# pr4 mode: the fault-tolerance benchmark. Runs the recoverable
# distributed CG under seed-42 fault plans — fault-free baseline, a 1%
# message-drop wire, and a single mid-solve rank crash — and writes
# solve times, recovery latencies, retry counts and correctness
# verdicts to BENCH_PR4.json (schema pjds-chaos/v1), comparable across
# checkouts with scripts/regress.sh.
#
# pr5 mode: the ingest-and-convert pipeline benchmark. Runs the
# parallel-reader / COO→CSR / pJDS-build / partition micro-benchmarks
# at worker counts 1/2/4, then the perfreport -convert phase
# comparison (1 worker vs 4), writing per-phase seconds, speedup, and
# the §II-C amortization quantities (spMVM-equivalents and break-even
# iteration count) to BENCH_PR5.json (schema pjds-convert/v1),
# comparable across checkouts with scripts/regress.sh.
#
# pr6 mode: the instrumentation hot path. Benchmarks Counter.Inc,
# Histogram.Observe and the flight-recorder record/span/disabled-hook
# paths with -benchmem and HARD-FAILS if any of them allocates in
# steady state — the recorder is designed to be left always-on, so
# 0 allocs/op is an acceptance criterion, not a nice-to-have. ns/op
# and allocs/op land in BENCH_PR6.json (schema pjds-bench-pr6/v1),
# comparable across checkouts with scripts/regress.sh (allocs are
# exact; give ns_per_op a wider band, e.g. ns_per_op=0.3).
#
# pr7 mode: the CPU host-kernel benchmarks. Runs the hostkernel
# naive/blocked/SELL/pJDS benchmarks with -benchmem at -count 3 and
# HARD-FAILS if (a) any host kernel allocates in steady state (the
# kernels are built for a zero-alloc steady state, so 0 allocs/op is
# an acceptance criterion) or (b) the blocked kernel's best ns/nnz is
# not below the naive reference's best (min over 3 runs on each side
# absorbs scheduler noise on the 1-CPU container — see DESIGN.md).
# ns/op, ns/nnz and allocs/op land in BENCH_PR7.json (schema
# pjds-bench-pr7/v1), comparable across checkouts with
# scripts/regress.sh (allocs are exact; give the timing metrics a
# wide band on virtualized hardware, e.g. ns_per_nnz=0.3).
#
# pr8 mode: the phase-labeled profiling benchmark. Runs the host
# benchmark under the CPU profiler with pprof phase labels on, appends
# the run to the ledger, HARD-FAILS unless >= 90% of CPU samples carry
# a known phase label (perfreport -profile -check-attributed 0.90),
# and writes the per-phase attribution to BENCH_PR8.json (schema
# pjds-profile/v1). The millisecond totals are wall-clock, so gate
# them with a wide band; the attribution fractions are the stable
# quantities.
#
# pr9 mode: the multi-tenant service benchmark. Runs spmvd -bench —
# the chaos client swarm (concurrent tenants, killed clients, tight
# deadlines, an injected mid-run ECC error forcing a device→host
# downgrade) against a live server over real HTTP, then the admission
# fast-path micro-benchmark — and writes p50/p99 end-to-end latency,
# throughput_rps, shed/downgrade counts and admission ns/op+allocs/op
# to BENCH_PR9.json (schema pjds-spmvd/v1). HARD-FAILS if the
# admission path allocates in steady state, if any returned digest
# differs from the fault-free reference, or if the percentiles are
# missing. Latency/throughput are wall-clock under load — gate them
# with a wide band (e.g. p50_latency_seconds=0.5); allocs and
# digest_mismatches are exact.
#
# pr10 mode: the format-selection benchmark. Sweeps the (C, σ)
# auto-tuner over the Table I matrices (CRS, pJDS, SELL-C-σ and CMRS
# contenders, Eq. 1 model pruning, timed replays), persists winners in
# a fresh tuning DB, and writes the auto-vs-pJDS comparison to
# BENCH_PR10.json (schema pjds-tune/v1). HARD-FAILS if (a) any tuned
# pick's result vector is not bit-identical to the naive CSR
# reference, (b) the auto pick is more than 25% slower than the pJDS
# preset on any matrix (the tuned format must win or tie within
# noise), or (c) the second run misses the tuning-DB cache anywhere
# (tune-once-per-fingerprint is part of the contract). The ns/nnz
# numbers are wall-clock — gate them with a wide band (e.g.
# auto_ns_per_nnz=0.3); digest_match and cache_hit are exact.
#
# Usage: scripts/bench.sh [scale]        (default 0.05 — quick but stable)
#        scripts/bench.sh pr2 [scale]
#        scripts/bench.sh pr3 [scale]
#        scripts/bench.sh pr4 [seed]
#        scripts/bench.sh pr5 [scale]
#        scripts/bench.sh pr6
#        scripts/bench.sh pr7
#        scripts/bench.sh pr8 [scale]
#        scripts/bench.sh pr9 [seed]
#        scripts/bench.sh pr10 [scale]
set -eu
cd "$(dirname "$0")/.."

MODE=default
case "${1:-}" in
pr2)
    MODE=pr2
    shift
    ;;
pr3)
    MODE=pr3
    shift
    ;;
pr4)
    MODE=pr4
    shift
    ;;
pr5)
    MODE=pr5
    shift
    ;;
pr6)
    MODE=pr6
    shift
    ;;
pr7)
    MODE=pr7
    shift
    ;;
pr8)
    MODE=pr8
    shift
    ;;
pr9)
    MODE=pr9
    shift
    ;;
pr10)
    MODE=pr10
    shift
    ;;
esac
SCALE="${1:-0.05}"

if [ "$MODE" = pr10 ]; then
    TMP=$(mktemp -d)
    trap 'rm -rf "$TMP"' EXIT
    echo "== format-selection benchmark (auto-tuner vs pJDS preset, scale $SCALE) =="
    go run ./cmd/spmvbench -format auto -scale "$SCALE" -host-iters 3 \
        -tuning-db "$TMP/tuning.jsonl" -tune-json BENCH_PR10.json
    echo "== second run (tuning-DB cache) =="
    go run ./cmd/spmvbench -format auto -scale "$SCALE" -host-iters 3 \
        -tuning-db "$TMP/tuning.jsonl" -tune-json "$TMP/second.json" >/dev/null
    awk '
        /"matrix":/ { m = $2; gsub(/[",]/, "", m) }
        /"auto_ns_per_nnz":/ { auto = $2; gsub(/[^0-9.eE+-]/, "", auto) }
        /"pjds_ns_per_nnz":/ {
            pjds = $2; gsub(/[^0-9.eE+-]/, "", pjds)
            if (auto + 0 <= 0 || pjds + 0 <= 0) {
                print "FAIL: " m " missing a measurement" > "/dev/stderr"; bad = 1
            } else if (auto + 0 > pjds * 1.25) {
                printf "FAIL: %s auto pick %.3f ns/nnz is >25%% slower than pJDS %.3f\n", \
                    m, auto, pjds > "/dev/stderr"
                bad = 1
            }
            n++
        }
        /"digest_match": false/ {
            print "FAIL: " m " tuned pick is not bit-identical to naive" > "/dev/stderr"
            bad = 1
        }
        END {
            if (n == 0) { print "FAIL: no entries in BENCH_PR10.json" > "/dev/stderr"; bad = 1 }
            else if (!bad) printf "gate ok: %d matrices, auto within 25%% of pJDS, all digests MATCH\n", n
            exit bad
        }' BENCH_PR10.json
    awk '
        /"matrix":/ { n++ }
        /"cache_hit": true/ { hits++ }
        END {
            if (n == 0 || hits != n) {
                printf "FAIL: second run hit the tuning DB on %d/%d matrices\n", \
                    hits, n > "/dev/stderr"
                exit 1
            }
            printf "gate ok: second run answered all %d matrices from the tuning DB\n", n
        }' "$TMP/second.json"
    echo "wrote BENCH_PR10.json (gate with scripts/regress.sh OLD NEW 0.02 auto_ns_per_nnz=0.3,pjds_ns_per_nnz=0.3,model_bytes_per_nnz=0.05)"
    exit 0
fi

if [ "$MODE" = pr9 ]; then
    SEED="${1:-42}"
    echo "== spmvd service benchmark (chaos swarm + admission fast path, seed $SEED) =="
    go run ./cmd/spmvd -bench -seed "$SEED" -o BENCH_PR9.json
    awk '
        /"allocs_per_op":/ {
            v = $2; gsub(/[^0-9.]/, "", v)
            if (v + 0 != 0) {
                print "FAIL: admission fast path allocates " v " allocs/op" > "/dev/stderr"
                bad = 1
            }
        }
        /"digest_mismatches":/ {
            v = $2; gsub(/[^0-9.]/, "", v)
            if (v + 0 != 0) {
                print "FAIL: " v " digest mismatch(es) under the chaos swarm" > "/dev/stderr"
                bad = 1
            }
        }
        /"p50_latency_seconds":/ { p50 = $2; gsub(/[^0-9.eE+-]/, "", p50) }
        /"p99_latency_seconds":/ { p99 = $2; gsub(/[^0-9.eE+-]/, "", p99) }
        END {
            if (p50 == "" || p99 == "" || p50 + 0 <= 0 || p99 + 0 <= 0) {
                print "FAIL: latency percentiles missing from BENCH_PR9.json" > "/dev/stderr"
                bad = 1
            } else {
                printf "gate ok: p50 %.3f ms, p99 %.3f ms, 0 allocs/op, 0 digest mismatches\n", \
                    p50 * 1000, p99 * 1000
            }
            exit bad
        }' BENCH_PR9.json
    echo "wrote BENCH_PR9.json (gate with scripts/regress.sh OLD NEW 0.02 p50_latency_seconds=0.5,p99_latency_seconds=0.5,throughput_rps=0.5,ns_per_op=0.3,elapsed_seconds=0.5)"
    exit 0
fi

if [ "$MODE" = pr8 ]; then
    TMP=$(mktemp -d)
    trap 'rm -rf "$TMP"' EXIT
    echo "== phase-labeled profiling benchmark (scale $SCALE) =="
    go run ./cmd/spmvbench -hostbench -host-kernel blocked -host-iters 3 \
        -scale "$SCALE" -cpuprofile "$TMP/cpu.pprof" -ledger default >/dev/null
    go run ./cmd/perfreport -profile "$TMP/cpu.pprof" -check-attributed 0.90
    go run ./cmd/perfreport -profile "$TMP/cpu.pprof" -json -o BENCH_PR8.json
    echo "wrote BENCH_PR8.json (gate attribution fractions; ms totals are wall-clock)"
    exit 0
fi

if [ "$MODE" = pr4 ]; then
    SEED="${1:-42}"
    echo "== chaos fault-tolerance benchmark (seed $SEED) =="
    go run ./cmd/chaos -seed "$SEED" -scenarios baseline,drop1pct,crash -skip-modes
    go run ./cmd/chaos -seed "$SEED" -scenarios baseline,drop1pct,crash -skip-modes \
        -json -o BENCH_PR4.json
    echo "wrote BENCH_PR4.json (gate with scripts/regress.sh OLD NEW)"
    exit 0
fi

if [ "$MODE" = pr6 ]; then
    echo "== instrumentation hot-path benchmarks (-benchmem, 0 allocs/op gate) =="
    OUT=$(go test -run '^$' \
        -bench 'BenchmarkCounterInc|BenchmarkHistogramObserve' \
        -benchmem ./internal/telemetry/
    go test -run '^$' \
        -bench 'BenchmarkFlightEvent|BenchmarkFlightSpan|BenchmarkRecordDisabled' \
        -benchmem ./internal/flight/)
    echo "$OUT"
    echo "$OUT" | awk '
        BEGIN { n = 0; bad = 0 }
        $1 ~ /^Benchmark/ && $(NF) == "allocs/op" {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            names[n] = name; ns[n] = $3; allocs[n] = $(NF-1); n++
            if ($(NF-1) + 0 != 0) {
                printf "FAIL: %s allocates %s allocs/op on the hot path\n", name, $(NF-1) > "/dev/stderr"
                bad = 1
            }
        }
        END {
            printf "{\n  \"schema\": \"pjds-bench-pr6/v1\",\n"
            printf "  \"benchmarks\": [\n"
            for (i = 0; i < n; i++)
                printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
                    names[i], ns[i], allocs[i], (i < n-1 ? "," : "")
            printf "  ]\n}\n"
            exit bad
        }' >BENCH_PR6.json
    echo "wrote BENCH_PR6.json (gate with scripts/regress.sh OLD NEW 0.02 ns_per_op=0.3)"
    exit 0
fi

if [ "$MODE" = pr7 ]; then
    echo "== host-kernel benchmarks (-benchmem, 0 allocs/op + blocked<naive gates) =="
    OUT=$(go test -run '^$' \
        -bench 'BenchmarkHostNaive|BenchmarkHostCRS|BenchmarkHostSELL|BenchmarkHostPJDS|BenchmarkHostCRSWorkers' \
        -benchmem -benchtime 300x -count 3 ./internal/hostkernel/)
    echo "$OUT"
    echo "$OUT" | awk '
        BEGIN { n = 0; bad = 0 }
        $1 ~ /^Benchmark/ && $NF == "allocs/op" {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            allocs = $(NF-1)
            nsnnz = ""
            for (i = 1; i < NF; i++) if ($(i+1) == "ns/nnz") nsnnz = $i
            if (allocs + 0 != 0) {
                printf "FAIL: %s allocates %s allocs/op in steady state\n", name, allocs > "/dev/stderr"
                bad = 1
            }
            if (!(name in best) || nsnnz + 0 < best[name] + 0) {
                if (!(name in best)) { names[n] = name; n++ }
                best[name] = nsnnz
                ns[name] = $3
                al[name] = allocs
            }
        }
        END {
            naive = best["BenchmarkHostNaive"]
            blocked = best["BenchmarkHostCRS/unroll4"]
            if (naive == "" || blocked == "") {
                print "FAIL: missing naive or blocked benchmark output" > "/dev/stderr"
                bad = 1
            } else if (blocked + 0 >= naive + 0) {
                printf "FAIL: blocked kernel %s ns/nnz not below naive %s ns/nnz\n", \
                    blocked, naive > "/dev/stderr"
                bad = 1
            } else {
                printf "gate ok: blocked %s ns/nnz < naive %s ns/nnz, all 0 allocs/op\n", \
                    blocked, naive > "/dev/stderr"
            }
            printf "{\n  \"schema\": \"pjds-bench-pr7/v1\",\n"
            printf "  \"benchmarks\": [\n"
            for (i = 0; i < n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"ns_per_nnz\": %s, \"allocs_per_op\": %s}%s\n", \
                    name, ns[name], best[name], al[name], (i < n-1 ? "," : "")
            }
            printf "  ]\n}\n"
            exit bad
        }' >BENCH_PR7.json
    echo "wrote BENCH_PR7.json (gate with scripts/regress.sh OLD NEW 0.02 ns_per_op=0.3,ns_per_nnz=0.3)"
    exit 0
fi

if [ "$MODE" = pr5 ]; then
    echo "== ingest-and-convert micro-benchmarks =="
    go test -run '^$' \
        -bench 'BenchmarkReadMatrixMarket|BenchmarkCOOToCSRWorkers' \
        -benchtime 3x ./internal/matrix/
    go test -run '^$' -bench 'BenchmarkNewPJDSWorkers' \
        -benchtime 3x ./internal/core/
    go test -run '^$' -bench 'BenchmarkPartition' \
        -benchtime 3x ./internal/distmv/
    echo "== perfreport conversion-cost report (scale $SCALE, 4 workers) =="
    go run ./cmd/perfreport -convert -matrix sAMG -scale "$SCALE" -workers 4
    go run ./cmd/perfreport -convert -matrix sAMG -scale "$SCALE" -workers 4 \
        -json -o BENCH_PR5.json
    echo "wrote BENCH_PR5.json (gate with scripts/regress.sh OLD NEW)"
    exit 0
fi

if [ "$MODE" = pr3 ]; then
    echo "== perfreport causal analysis (scale $SCALE, P=8, all modes) =="
    go run ./cmd/perfreport -ranks 8 -scale "$SCALE"
    go run ./cmd/perfreport -ranks 8 -scale "$SCALE" -json -o BENCH_PR3.json
    echo "wrote BENCH_PR3.json (gate with scripts/regress.sh OLD NEW)"
    exit 0
fi

if [ "$MODE" = pr2 ]; then
    echo "== kernel-plan benchmarks (scale $SCALE) =="
    OUT=$(PJDS_SCALE="$SCALE" go test -run '^$' \
        -bench 'BenchmarkRunPJDS|BenchmarkRunELLPACKR|BenchmarkPlanCompile' \
        -benchtime 5x ./internal/gpu/)
    echo "$OUT"
    echo "$OUT" | awk -v scale="$SCALE" '
        BEGIN { n = 0 }
        $1 ~ /^Benchmark/ && $NF == "ns/op" {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
            names[n] = name; iters[n] = $2; ns[n] = $3; n++
            if (name == "BenchmarkPlanCompile/compile") compile = $3
            if (name == "BenchmarkPlanCompile/replay")  replay = $3
        }
        END {
            printf "{\n  \"schema\": \"pjds-bench-pr2/v1\",\n"
            printf "  \"scale\": %s,\n", scale
            printf "  \"benchmarks\": [\n"
            for (i = 0; i < n; i++)
                printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}%s\n", \
                    names[i], iters[i], ns[i], (i < n-1 ? "," : "")
            printf "  ],\n"
            printf "  \"before_compile_per_call_ns\": %s,\n", compile
            printf "  \"after_cached_replay_ns\": %s,\n", replay
            printf "  \"plan_amortization_speedup\": %.3f\n", compile / replay
            printf "}\n"
        }' >BENCH_PR2.json
    echo "wrote BENCH_PR2.json"
    exit 0
fi

go build -o /tmp/pjds-bin/ ./cmd/...
BIN=/tmp/pjds-bin

echo "== Go micro-benchmarks =="
go test -run '^$' -bench . -benchtime 1x ./...

echo "== spmvbench Table I workload (scale $SCALE) =="
$BIN/spmvbench -table1 -scale "$SCALE" -json BENCH_PR1.json \
    -metrics-out BENCH_PR1.metrics.json > /dev/null
echo "wrote BENCH_PR1.json and BENCH_PR1.metrics.json"
