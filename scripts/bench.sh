#!/bin/sh
# Run the repo's performance benchmarks: the Go micro-benchmarks, then
# a fixed spmvbench workload whose measurements land in BENCH_PR1.json
# (schema pjds-bench/v1: GF/s, derived bandwidth, code balance and
# alpha per matrix/format/precision/ECC cell).
#
# Usage: scripts/bench.sh [scale]   (default 0.05 — quick but stable)
set -eu
cd "$(dirname "$0")/.."
SCALE="${1:-0.05}"

go build -o /tmp/pjds-bin/ ./cmd/...
BIN=/tmp/pjds-bin

echo "== Go micro-benchmarks =="
go test -run '^$' -bench . -benchtime 1x ./...

echo "== spmvbench Table I workload (scale $SCALE) =="
$BIN/spmvbench -table1 -scale "$SCALE" -json BENCH_PR1.json \
    -metrics-out BENCH_PR1.metrics.json > /dev/null
echo "wrote BENCH_PR1.json and BENCH_PR1.metrics.json"
