#!/bin/sh
# Repository health check: vet, build, the full test suite, and a race
# run over the concurrency-heavy packages (virtual-time fabric, the
# MPI-like layer, the distributed spMVM engine, fault plans, the
# fault-tolerant solver, telemetry, the GPU worker pool — the gpu
# tests exercise Workers>1 and concurrent plan-cache lookups — and the
# parallel ingest-and-convert pipeline), a seeded chaos smoke scenario,
# and a conversion determinism smoke (matinfo at 1 vs 4 workers must
# produce byte-identical output).
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/telemetry/... ./internal/simnet/... \
    ./internal/mpi/... ./internal/distmv/... \
    ./internal/faults/... ./internal/distsolver/...

echo "== go test -race (gpu worker pool, Workers>1) =="
go test -race ./internal/gpu/...

echo "== go test -race (ingest-and-convert pipeline) =="
go test -race ./internal/matrix/... ./internal/core/... \
    ./internal/formats/... ./internal/par/... ./internal/convert/...

echo "== conversion determinism smoke (matinfo, 1 vs 4 workers) =="
# The parallel ingest/convert pipeline must be bit-identical to the
# sequential one: same stats, same footprints, same re-serialized file.
go run ./cmd/matinfo -gen HMEp -scale 0.02 -out "$TMP/m.mtx" >/dev/null
go run ./cmd/matinfo -workers 1 -out "$TMP/w1.mtx" "$TMP/m.mtx" |
    grep -v '^wrote ' >"$TMP/out1"
go run ./cmd/matinfo -workers 4 -out "$TMP/w4.mtx" "$TMP/m.mtx" |
    grep -v '^wrote ' >"$TMP/out4"
cmp "$TMP/w1.mtx" "$TMP/w4.mtx"
cmp "$TMP/out1" "$TMP/out4"

echo "== chaos smoke (1 dropped message + 1 rank crash, seed 42) =="
# Injects one message drop and one mid-solve rank crash into the
# recoverable distributed CG; the run must recover, stay bit-identical
# to the fault-free solve, and reproduce under the same seed.
go run ./cmd/chaos -smoke

echo "== regression-gate self-diff (perfreport) =="
# The simulator is deterministic, so two identical runs must produce
# byte-comparable reports and the gate must find zero regressions.
go run ./cmd/perfreport -ranks 4 -scale 0.02 -modes task -json -o "$TMP/a.json" >/dev/null
go run ./cmd/perfreport -ranks 4 -scale 0.02 -modes task -json -o "$TMP/b.json" >/dev/null
scripts/regress.sh "$TMP/a.json" "$TMP/b.json"

echo "all checks passed"
