#!/bin/sh
# Repository health check: vet, build, the full test suite, and a race
# run over the concurrency-heavy packages (virtual-time fabric, the
# MPI-like layer, the distributed spMVM engine, fault plans, the
# fault-tolerant solver, telemetry, the GPU worker pool — the gpu
# tests exercise Workers>1 and concurrent plan-cache lookups — and the
# parallel ingest-and-convert pipeline, and the host-kernel layer with
# its worker pools), a seeded chaos smoke scenario, a conversion
# determinism smoke (matinfo at 1 vs 4 workers must produce
# byte-identical output), a host-kernel byte-diff smoke (spmvbench
# -hostbench digests must be identical for naive, blocked, sell and
# cmrs), and a format-tuning smoke (spmvbench -format auto must sweep,
# digest-match naive on every matrix, surface its winner through
# matinfo -recommend and perfreport -tune, and answer the second run
# entirely from the tuning-DB cache). The chaos smoke also verifies the
# flight recorder dumps a perfreport-readable incident trace on the
# injected crash, and an endpoint smoke asserts a held scaling run
# serves /metrics, /healthz, /spans, /health, /dashboard and
# /trends.json with non-empty 200 bodies and that spmvtop renders a
# frame against it. A labeled-profile smoke requires >= 90% of CPU
# samples to carry a known phase label, and a trend smoke gates the
# checked-in BENCH_PR*.json trajectory plus a fresh run ledger on
# sustained cross-run regressions. The spmvd smoke runs the chaos
# client swarm against a live multi-tenant server, then starts two
# servers (one with an injected ECC fault, one clean), uploads a
# matrix over the wire, fires concurrent solves at both, requires the
# solution digests to be bit-identical across the device→host
# downgrade, and requires both servers to drain cleanly on SIGTERM
# with exit 0.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
# telemetry includes the scrape-while-write hammer; flight the
# concurrent ring record/snapshot test.
go test -race ./internal/telemetry/... ./internal/simnet/... \
    ./internal/mpi/... ./internal/distmv/... \
    ./internal/faults/... ./internal/distsolver/... \
    ./internal/flight/... ./internal/health/... \
    ./internal/service/...

echo "== go test -race (gpu worker pool, Workers>1) =="
go test -race ./internal/gpu/...

echo "== go test -race (ingest-and-convert pipeline) =="
go test -race ./internal/matrix/... ./internal/core/... \
    ./internal/formats/... ./internal/par/... ./internal/convert/...

echo "== go test -race (host kernels, worker pools, tuner) =="
go test -race ./internal/hostkernel/... ./internal/cpu/... \
    ./internal/tuner/...

echo "== host-kernel byte-diff smoke (blocked and sell vs naive) =="
# Every host kernel must produce byte-identical results: the digest
# lines of spmvbench -hostbench hash the float64 bit patterns of y.
go run ./cmd/spmvbench -hostbench -host-kernel naive -host-iters 1 \
    -scale 0.02 | grep '^digest ' >"$TMP/host-naive"
go run ./cmd/spmvbench -hostbench -host-kernel blocked -host-iters 1 \
    -scale 0.02 | grep '^digest ' >"$TMP/host-blocked"
go run ./cmd/spmvbench -hostbench -host-kernel sell -host-iters 1 \
    -scale 0.02 | grep '^digest ' >"$TMP/host-sell"
go run ./cmd/spmvbench -hostbench -host-kernel cmrs -host-iters 1 \
    -scale 0.02 | grep '^digest ' >"$TMP/host-cmrs"
cmp "$TMP/host-naive" "$TMP/host-blocked"
cmp "$TMP/host-naive" "$TMP/host-sell"
cmp "$TMP/host-naive" "$TMP/host-cmrs"

echo "== format tuning smoke (tune -> recommend -> run, digest + cache gates) =="
# The auto-tuner sweeps the (C, σ) grid once, every tuned pick must be
# bit-identical to the naive CSR reference (the MATCH digest lines),
# matinfo -recommend and perfreport -tune must surface the persisted
# winner, and a second bench run must answer every matrix from the DB
# without re-sweeping.
go run ./cmd/spmvbench -format auto -scale 0.02 -host-iters 1 \
    -tuning-db "$TMP/tuning.jsonl" >"$TMP/tune1.out"
grep '^digest ' "$TMP/tune1.out" | grep -v ' MATCH ' && {
    echo "a tuned pick diverged from the naive digest:" >&2
    cat "$TMP/tune1.out" >&2
    exit 1
}
go run ./cmd/matinfo -gen sAMG -scale 0.02 -recommend \
    -tuning-db "$TMP/tuning.jsonl" >"$TMP/recommend.out"
grep -q '^tuned: ' "$TMP/recommend.out" || {
    echo "matinfo -recommend did not surface the tuned winner:" >&2
    cat "$TMP/recommend.out" >&2
    exit 1
}
go run ./cmd/perfreport -tune -tuning-db "$TMP/tuning.jsonl" >/dev/null
go run ./cmd/spmvbench -format auto -scale 0.02 -host-iters 1 \
    -tuning-db "$TMP/tuning.jsonl" >"$TMP/tune2.out"
if grep '^digest ' "$TMP/tune2.out" | grep -qv ' MATCH ' ||
    grep -E '^[A-Za-z0-9]+ +[0-9]+ +[0-9]+ .* sweep ' "$TMP/tune2.out" >/dev/null; then
    echo "second tuning run re-swept or lost bit-identity:" >&2
    cat "$TMP/tune2.out" >&2
    exit 1
fi

echo "== conversion determinism smoke (matinfo, 1 vs 4 workers) =="
# The parallel ingest/convert pipeline must be bit-identical to the
# sequential one: same stats, same footprints, same re-serialized file.
go run ./cmd/matinfo -gen HMEp -scale 0.02 -out "$TMP/m.mtx" >/dev/null
go run ./cmd/matinfo -workers 1 -out "$TMP/w1.mtx" "$TMP/m.mtx" |
    grep -v '^wrote ' >"$TMP/out1"
go run ./cmd/matinfo -workers 4 -out "$TMP/w4.mtx" "$TMP/m.mtx" |
    grep -v '^wrote ' >"$TMP/out4"
cmp "$TMP/w1.mtx" "$TMP/w4.mtx"
cmp "$TMP/out1" "$TMP/out4"

echo "== chaos smoke (1 dropped message + 1 rank crash, seed 42) =="
# Injects one message drop and one mid-solve rank crash into the
# recoverable distributed CG; the run must recover, stay bit-identical
# to the fault-free solve, and reproduce under the same seed. The
# flight recorder rides along: the injected crash must trigger a
# post-incident dump that perfreport -trace-in can analyze.
go run ./cmd/chaos -smoke -flight-dump "$TMP/incident.json"
test -s "$TMP/incident.json" || {
    echo "chaos crash did not trigger a flight-recorder dump" >&2
    exit 1
}
go run ./cmd/perfreport -trace-in "$TMP/incident.json" >/dev/null

echo "== live endpoint smoke (scaling -metrics-addr, spmvtop) =="
# A held scaling run must serve every observability endpoint with a
# non-empty 200 body, and spmvtop must render a live frame against it.
go build -o "$TMP/bin/" ./cmd/scaling ./cmd/spmvtop
"$TMP/bin/scaling" -matrix DLR1 -scale 0.02 -nodes 2 -iters 1 \
    -metrics-addr 127.0.0.1:0 -flight -hold 60s >"$TMP/scaling.out" 2>&1 &
SCALING_PID=$!
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's|^metrics on http://\([^/]*\)/metrics$|\1|p' "$TMP/scaling.out")
    [ -n "$ADDR" ] && break
    i=$((i + 1))
    sleep 0.2
done
if [ -z "$ADDR" ]; then
    echo "scaling never bound its metrics endpoint:" >&2
    cat "$TMP/scaling.out" >&2
    kill "$SCALING_PID" 2>/dev/null || true
    exit 1
fi
for p in /metrics /metrics.json /healthz /spans /health /dashboard /trends.json; do
    CODE=$(curl -s -o "$TMP/body" -w '%{http_code}' "http://$ADDR$p")
    if [ "$CODE" != 200 ] || ! [ -s "$TMP/body" ]; then
        echo "GET $p returned HTTP $CODE ($(wc -c <"$TMP/body") bytes), want non-empty 200" >&2
        kill "$SCALING_PID" 2>/dev/null || true
        exit 1
    fi
done
"$TMP/bin/spmvtop" -addr "$ADDR" -once >"$TMP/spmvtop.out"
grep -q "per-rank utilization" "$TMP/spmvtop.out" || {
    echo "spmvtop -once did not render the live view:" >&2
    cat "$TMP/spmvtop.out" >&2
    kill "$SCALING_PID" 2>/dev/null || true
    exit 1
}
kill "$SCALING_PID" 2>/dev/null || true
wait "$SCALING_PID" 2>/dev/null || true

echo "== spmvd chaos swarm smoke (concurrent tenants, injected ECC) =="
# The synthetic client swarm hammers a live server over HTTP with
# concurrent tenants, killed clients and tight deadlines while device 0
# takes an uncorrectable ECC error; spmvd exits non-zero if any
# returned digest differs from the fault-free reference, if an
# unexpected error surfaces, or if nothing succeeds.
go build -o "$TMP/bin/" ./cmd/spmvd
"$TMP/bin/spmvd" -swarm -swarm-clients 8 -swarm-requests 4 -devices 2 \
    -faults 'ecc rank=0 launch=5' >"$TMP/swarm.out" 2>&1 || {
    echo "spmvd swarm smoke failed:" >&2
    cat "$TMP/swarm.out" >&2
    exit 1
}

echo "== spmvd lifecycle smoke (upload, ECC downgrade digests, SIGTERM drain) =="
# Two live servers — one with an ECC fault on device 0's second
# launch, one clean — serve the same uploaded matrix. Solves for the
# same seeds must digest bit-identically (the degradation ladder must
# never change results), and SIGTERM must drain both to exit 0.
# max_iter bounds the CG run (HMEp is not SPD, so CG won't converge):
# a fixed iteration count is deterministic on both sides, where a
# deadline checkpoint would cut at a wall-clock-dependent iteration.
"$TMP/bin/spmvd" -addr 127.0.0.1:0 -devices 2 -drain-grace 10s \
    -faults 'ecc rank=0 launch=2' >"$TMP/svc-ecc.out" 2>&1 &
ECC_PID=$!
"$TMP/bin/spmvd" -addr 127.0.0.1:0 -devices 2 -drain-grace 10s \
    >"$TMP/svc-ok.out" 2>&1 &
OK_PID=$!
for side in ecc ok; do
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's|^spmvd listening on http://\(.*\)$|\1|p' "$TMP/svc-$side.out")
        [ -n "$ADDR" ] && break
        i=$((i + 1))
        sleep 0.2
    done
    if [ -z "$ADDR" ]; then
        echo "spmvd ($side) never bound its address:" >&2
        cat "$TMP/svc-$side.out" >&2
        kill "$ECC_PID" "$OK_PID" 2>/dev/null || true
        exit 1
    fi
    eval "ADDR_$side=\$ADDR"
done
for side in ecc ok; do
    eval "ADDR=\$ADDR_$side"
    ID=$(curl -s -X POST -H 'X-Tenant: check' --data-binary @"$TMP/m.mtx" \
        "http://$ADDR/v1/matrices?name=smoke" |
        sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')
    if [ -z "$ID" ]; then
        echo "spmvd ($side) upload returned no matrix id" >&2
        kill "$ECC_PID" "$OK_PID" 2>/dev/null || true
        exit 1
    fi
    CURL_PIDS=""
    for s in 1 2 3 4; do
        curl -s -X POST -H 'X-Tenant: check' \
            -d "{\"matrix\":\"$ID\",\"seed\":$s,\"tol\":1e-8,\"max_iter\":50}" \
            "http://$ADDR/v1/solve" >"$TMP/solve-$side-$s.json" &
        CURL_PIDS="$CURL_PIDS $!"
    done
    wait $CURL_PIDS
    grep -h '"digest"' "$TMP"/solve-$side-*.json | sort >"$TMP/digests-$side"
    [ -s "$TMP/digests-$side" ] || {
        echo "spmvd ($side) solves returned no digests" >&2
        kill "$ECC_PID" "$OK_PID" 2>/dev/null || true
        exit 1
    }
done
cmp "$TMP/digests-ecc" "$TMP/digests-ok" || {
    echo "spmvd digests differ across the ECC device->host downgrade" >&2
    kill "$ECC_PID" "$OK_PID" 2>/dev/null || true
    exit 1
}
kill -TERM "$ECC_PID" "$OK_PID"
wait "$ECC_PID" || {
    echo "spmvd (ecc) did not exit 0 on SIGTERM:" >&2
    cat "$TMP/svc-ecc.out" >&2
    exit 1
}
wait "$OK_PID" || {
    echo "spmvd (ok) did not exit 0 on SIGTERM:" >&2
    cat "$TMP/svc-ok.out" >&2
    exit 1
}
grep -q 'drained in' "$TMP/svc-ecc.out" && grep -q 'drained in' "$TMP/svc-ok.out" || {
    echo "spmvd did not report a drain on SIGTERM" >&2
    exit 1
}

echo "== regression-gate self-diff (perfreport) =="
# The simulator is deterministic, so two identical runs must produce
# byte-comparable reports and the gate must find zero regressions.
go run ./cmd/perfreport -ranks 4 -scale 0.02 -modes task -json -o "$TMP/a.json" >/dev/null
go run ./cmd/perfreport -ranks 4 -scale 0.02 -modes task -json -o "$TMP/b.json" >/dev/null
scripts/regress.sh "$TMP/a.json" "$TMP/b.json"

echo "== labeled-profile smoke (spmvbench -cpuprofile, perfreport -profile) =="
# A short host benchmark run under the CPU profiler must come back
# with >= 90% of its samples attributed to known phase labels — a hot
# path losing its pprof label shows up here before it muddies any real
# profile. The run also appends to a fresh ledger (twice, so the trend
# smoke below has a sustained tail to look at).
go run ./cmd/spmvbench -hostbench -host-kernel blocked -host-iters 2 \
    -scale 0.05 -cpuprofile "$TMP/cpu.pprof" -memprofile "$TMP/mem.pprof" \
    -ledger "$TMP/ledger.jsonl" >/dev/null
go run ./cmd/spmvbench -hostbench -host-kernel blocked -host-iters 2 \
    -scale 0.05 -ledger "$TMP/ledger.jsonl" >/dev/null
go run ./cmd/perfreport -profile "$TMP/cpu.pprof" -check-attributed 0.90
go run ./cmd/perfreport -profile "$TMP/mem.pprof" >/dev/null

echo "== cross-run trend gate (perfreport -trend over BENCH_PR*.json + ledger) =="
# The checked-in PR trajectory plus the two fresh ledger entries must
# pass the sustained-regression gate; the ungated report renders too.
LEDGER="$TMP/ledger.jsonl" scripts/regress.sh trend
go run ./cmd/perfreport -trend -ledger "$TMP/ledger.jsonl" \
    $(ls BENCH_PR*.json | grep -v '\.metrics\.json$' | sort -V) >/dev/null

echo "all checks passed"
