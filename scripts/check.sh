#!/bin/sh
# Repository health check: vet, build, the full test suite, and a race
# run over the concurrency-heavy packages (virtual-time fabric, the
# MPI-like layer, the distributed spMVM engine, and telemetry).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/telemetry/... ./internal/simnet/... \
    ./internal/mpi/... ./internal/distmv/...

echo "all checks passed"
