#!/bin/sh
# Repository health check: vet, build, the full test suite, and a race
# run over the concurrency-heavy packages (virtual-time fabric, the
# MPI-like layer, the distributed spMVM engine, fault plans, the
# fault-tolerant solver, telemetry, and the GPU worker pool — the gpu
# tests exercise Workers>1 and concurrent plan-cache lookups), plus a
# seeded chaos smoke scenario.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/telemetry/... ./internal/simnet/... \
    ./internal/mpi/... ./internal/distmv/... \
    ./internal/faults/... ./internal/distsolver/...

echo "== go test -race (gpu worker pool, Workers>1) =="
go test -race ./internal/gpu/...

echo "== chaos smoke (1 dropped message + 1 rank crash, seed 42) =="
# Injects one message drop and one mid-solve rank crash into the
# recoverable distributed CG; the run must recover, stay bit-identical
# to the fault-free solve, and reproduce under the same seed.
go run ./cmd/chaos -smoke

echo "== regression-gate self-diff (perfreport) =="
# The simulator is deterministic, so two identical runs must produce
# byte-comparable reports and the gate must find zero regressions.
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
go run ./cmd/perfreport -ranks 4 -scale 0.02 -modes task -json -o "$TMP/a.json" >/dev/null
go run ./cmd/perfreport -ranks 4 -scale 0.02 -modes task -json -o "$TMP/b.json" >/dev/null
scripts/regress.sh "$TMP/a.json" "$TMP/b.json"

echo "all checks passed"
