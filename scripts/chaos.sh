#!/bin/sh
# Chaos-hardening sweep: run the fault-injection harness over every
# fault scenario (message drops, mid-solve rank crash, uncorrectable
# ECC event, all combined) and the three §III-A communication modes,
# then verify that every recovered solve stays bit-identical to the
# fault-free run and that the same seed reproduces the identical
# report. Exits non-zero on any correctness loss.
#
# Usage: scripts/chaos.sh [seed] [extra cmd/chaos flags...]
#   scripts/chaos.sh               # full sweep, seed 42
#   scripts/chaos.sh 7             # different fault schedule
#   scripts/chaos.sh 42 -json -o chaos.json
set -eu
cd "$(dirname "$0")/.."

SEED="${1:-42}"
[ $# -gt 0 ] && shift
exec go run ./cmd/chaos -seed "$SEED" "$@"
