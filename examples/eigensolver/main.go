// Eigensolver: the paper's motivating application (§I-A) and outlook
// (§IV) — extremal eigenvalues of a Holstein-Hubbard-like Hamiltonian
// with a Lanczos iteration that runs entirely in the pJDS-permuted
// basis, entering and leaving it exactly once (§II-A).
package main

import (
	"fmt"
	"log"

	"pjds"
)

func main() {
	// An HMEp-like quantum Hamiltonian (scaled down; symmetrized so
	// the spectrum is real). The generated matrix is structurally
	// nonsymmetric, so work on B = (A+Aᵀ)/2 as a model operator.
	a := pjds.Generate("HMEp", 0.01)
	b, err := pjds.Symmetrize(a)
	if err != nil {
		log.Fatal(err)
	}
	st := pjds.ComputeStats(b)
	fmt.Printf("Hamiltonian: %s\n", st)

	// The §II-A workflow: one symmetric permutation into the pJDS
	// basis, all iterations on the Listing-2 kernel, one permutation
	// back at the end.
	op, err := pjds.NewPermutedPJDS(b, pjds.Options{})
	if err != nil {
		log.Fatal(err)
	}

	const steps = 80
	res, err := pjds.Lanczos(op, steps, nil)
	if err != nil {
		log.Fatal(err)
	}
	lo := res.RitzValues[0]
	hi := res.RitzValues[len(res.RitzValues)-1]
	fmt.Printf("Lanczos (%d steps): lambda_min ~ %.6f, lambda_max ~ %.6f\n", res.Steps, lo, hi)

	// Cross-check the dominant eigenvalue with power iteration on the
	// plain CRS operator (original basis).
	pr, err := pjds.PowerIteration(crsOperator{b}, nil, 1e-10, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power iteration:   lambda_max ~ %.6f (%d iterations)\n", pr.Eigenvalue, pr.Iterations)
	fmt.Printf("agreement: |Lanczos - power| = %.2e\n", abs(hi-pr.Eigenvalue))

	// What one Lanczos iteration costs on the simulated GPU: the spMVM
	// dominates, which is the paper's whole premise.
	dev := pjds.TeslaC2070()
	x := make([]float64, b.NCols)
	for i := range x {
		x[i] = 1
	}
	yp := make([]float64, op.P.NPad)
	ks, err := pjds.RunPJDS(dev, op.P, yp, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-iteration spMVM on %s: %.3f ms (%.1f GF/s)\n",
		dev.Name, 1e3*ks.KernelSeconds, ks.GFlops)
}

// crsOperator adapts a CSR matrix to the solver interface.
type crsOperator struct{ m *pjds.CSR }

func (o crsOperator) Dim() int                   { return o.m.NRows }
func (o crsOperator) Apply(y, x []float64) error { return o.m.MulVec(y, x) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
