// Quickstart: build a sparse matrix, convert it to pJDS, run the
// spMVM on the simulated Fermi GPU, and verify the result against the
// CRS reference — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"math"

	"pjds"
)

func main() {
	// A paper test matrix at 5% of its published size (any of DLR1,
	// DLR2, HMEp, sAMG, UHBR; see pjds.Generate).
	m := pjds.Generate("sAMG", 0.05)
	st := pjds.ComputeStats(m)
	fmt.Printf("matrix: %s\n", st)

	// Convert to the paper's pJDS format (block height = warp size).
	p, err := pjds.NewPJDS(m, pjds.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ell := pjds.NewELLPACK(m)
	fmt.Printf("pJDS stores %d elements; plain ELLPACK would store %d (%.1f%% reduction)\n",
		p.StoredElems(), ell.StoredElems(), 100*pjds.DataReduction(ell, p))

	// Run one spMVM on a simulated Tesla C2070 (ECC on).
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + math.Sin(0.001*float64(i))
	}
	dev := pjds.TeslaC2070()
	yp := make([]float64, p.NPad)
	ks, err := pjds.RunPJDS(dev, p, yp, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated kernel: %s\n", ks)

	// pJDS works in a permuted basis; scatter the result back and
	// verify against the CRS reference.
	y := make([]float64, m.NRows)
	for i, old := range p.Perm {
		y[old] = yp[i]
	}
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range y {
		if d := math.Abs(y[i] - ref[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max abs deviation from CRS reference: %.3g\n", maxErr)

	// The same kernel in ELLPACK-R, for comparison.
	ellr := pjds.NewELLPACKR(m)
	yr := make([]float64, m.NRows)
	kr, err := pjds.RunELLPACKR(dev, ellr, yr, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ELLPACK-R:        %s\n", kr)
	fmt.Printf("pJDS speedup over ELLPACK-R: %.2fx\n", ks.GFlops/kr.GFlops)
}
