// CFD cluster: a DLR1-style adjoint CFD matrix distributed over a
// simulated 16-GPU cluster, comparing the paper's three communication
// schemes (§III-A) and printing the Fig. 4 task-mode timeline.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"pjds"
)

func main() {
	m := pjds.Generate("DLR1", 0.25)
	st := pjds.ComputeStats(m)
	fmt.Printf("CFD matrix: %s\n\n", st)

	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + math.Cos(0.002*float64(i))
	}
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		log.Fatal(err)
	}

	const nodes = 16
	fmt.Printf("%-26s %10s %12s\n", "communication scheme", "GF/s", "s/iteration")
	fmt.Println(strings.Repeat("-", 50))
	var best *pjds.ClusterResult
	for _, mode := range []pjds.Mode{pjds.VectorMode, pjds.NaiveOverlap, pjds.TaskMode} {
		res, err := pjds.RunCluster(m, x, nodes, mode, pjds.ClusterConfig{Iterations: 3})
		if err != nil {
			log.Fatal(err)
		}
		verify(res.Y, ref)
		fmt.Printf("%-26s %10.2f %12.3g\n", mode, res.GFlops, res.PerIterSeconds)
		if mode == pjds.TaskMode {
			best = res
		}
	}

	// The Fig. 4 timeline of rank 0's first task-mode iteration.
	fmt.Printf("\ntask-mode timeline, rank 0 (μs):\n")
	for _, e := range best.Timeline {
		bar := strings.Repeat("=", 1+int(40*(e.End-e.Start)/best.PerIterSeconds))
		fmt.Fprintf(os.Stdout, "%-5s %-18s %8.1f..%-8.1f %s\n",
			e.Lane, e.Name, 1e6*e.Start, 1e6*e.End, bar)
	}

	// Per-rank communication structure.
	r := best.Ranks[nodes/2]
	fmt.Printf("\nrank %d: %d local rows, %d halo elements from %d neighbours\n",
		r.Rank, r.LocalRows, r.HaloElems, r.Neighbors)
}

func verify(y, ref []float64) {
	for i := range ref {
		if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
			log.Fatalf("distributed result diverges at row %d", i)
		}
	}
}
