// Autotune: given a matrix, measure every storage format on the
// simulated device, pick the empirical winner, and compare it with the
// §II model-based advisor's prediction — the workflow a production
// spMVM library would run at setup time.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"pjds"
)

type contender struct {
	name      string
	footprint int64
	gflops    float64
}

func main() {
	for _, scenario := range []struct {
		label string
		m     *pjds.CSR
	}{
		{"sAMG (short irregular rows)", pjds.Generate("sAMG", 0.05)},
		{"DLR2 (dense 5x5 blocks)", pjds.Generate("DLR2", 0.05)},
	} {
		fmt.Printf("=== %s ===\n", scenario.label)
		autotune(scenario.m)
		fmt.Println()
	}
}

func autotune(m *pjds.CSR) {
	st := pjds.ComputeStats(m)
	fmt.Printf("matrix: %s\n", st)

	// The model's prediction, before measuring anything.
	rec := pjds.Recommend(st)
	fmt.Printf("advisor predicts: %s (offload: %s)\n\n", rec.Format, rec.Offload)

	dev := pjds.TeslaC2070()
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + math.Sin(0.001*float64(i))
	}
	y := make([]float64, m.NRows)

	var results []contender
	add := func(name string, fp int64, ks *pjds.KernelStats, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		results = append(results, contender{name, fp, ks.GFlops})
	}

	ellr := pjds.NewELLPACKR(m)
	ks, err := pjds.RunELLPACKR(dev, ellr, y, x)
	add(ellr.Name(), ellr.FootprintBytes(), ks, err)

	p, err := pjds.NewPJDS(m, pjds.Options{})
	if err != nil {
		log.Fatal(err)
	}
	yp := make([]float64, p.NPad)
	ks, err = pjds.RunPJDS(dev, p, yp, x)
	add(p.Name(), p.FootprintBytes(), ks, err)

	for _, threads := range []int{2, 4} {
		e, err := pjds.NewELLRT(m, threads)
		if err != nil {
			log.Fatal(err)
		}
		ks, err := pjds.RunELLRT(dev, e, y, x)
		add(e.Name(), e.FootprintBytes(), ks, err)
	}

	bell, err := pjds.NewBELLPACK(m, 5, 5)
	if err != nil {
		log.Fatal(err)
	}
	ks, err = pjds.RunBELLPACK(dev, bell, y, x)
	add(bell.Name(), bell.FootprintBytes(), ks, err)

	sort.Slice(results, func(i, j int) bool { return results[i].gflops > results[j].gflops })
	fmt.Printf("%-14s %10s %14s\n", "format", "GF/s", "footprint MB")
	for i, r := range results {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf("%s %-12s %9.2f %14.1f\n", marker, r.name, r.gflops, float64(r.footprint)/(1<<20))
	}
	if results[0].name == rec.Format {
		fmt.Println("advisor prediction confirmed by measurement")
	} else {
		fmt.Printf("measurement picked %s over the advisor's %s (predictions are heuristics; measurements win)\n",
			results[0].name, rec.Format)
	}
}
