// Distributed power iteration: the dominant eigenvalue of a sparse
// matrix computed across 8 simulated cluster nodes, with a fresh halo
// exchange every iteration (unlike the fixed-vector spMVM benchmark,
// the iterate changes each step) and allreduce-based normalization —
// the communication skeleton of every distributed eigensolver.
//
// It uses the library's lower layers directly: distmv.Distribute for
// the communication pattern, internal/mpi for message passing. The
// distributed eigenvalue is verified against the serial solver.
package main

import (
	"fmt"
	"log"
	"math"

	"pjds/internal/distmv"
	"pjds/internal/matgen"
	"pjds/internal/mpi"
	"pjds/internal/simnet"
	"pjds/internal/solver"
)

const (
	ranks   = 8
	maxIter = 300
	tol     = 1e-12
)

func main() {
	// A symmetric operator with a well-separated dominant mode: the
	// 2D Laplacian with one strong "defect" on the diagonal, so power
	// iteration converges quickly and deterministically.
	m := matgen.Stencil2D(300, 300)
	for k := m.RowPtr[0]; k < m.RowPtr[1]; k++ {
		if m.ColIdx[k] == 0 {
			m.Val[k] = 50
		}
	}
	n := m.NRows
	fmt.Printf("operator: %d x %d, %d non-zeros, %d ranks\n", n, n, m.Nnz(), ranks)

	pt, err := distmv.PartitionByNnz(m, ranks)
	if err != nil {
		log.Fatal(err)
	}
	problems, err := distmv.Distribute(m, pt)
	if err != nil {
		log.Fatal(err)
	}

	var distLambda float64
	var iters int
	clocks, err := mpi.Run(ranks, simnet.QDRInfiniBand(), func(c *mpi.Comm) error {
		rp := problems[c.Rank()]
		nloc := rp.LocalRows()
		x := make([]float64, nloc)
		for i := range x {
			x[i] = 1 + 0.001*float64((rp.RowLo+i)%17)
		}
		halo := make([]float64, rp.HaloSize())
		y := make([]float64, nloc)

		lambda := 0.0
		for it := 0; it < maxIter; it++ {
			// Fresh halo exchange for the current iterate.
			var recvs, all []*mpi.Request
			for o := 0; o < rp.P; o++ {
				if _, ok := rp.RecvCount[o]; ok {
					r := c.Irecv(o, it)
					recvs = append(recvs, r)
					all = append(all, r)
				}
			}
			for d := 0; d < rp.P; d++ {
				idx, ok := rp.SendIdx[d]
				if !ok {
					continue
				}
				buf := make([]float64, len(idx))
				for k, i := range idx {
					buf[k] = x[i]
				}
				all = append(all, c.Isend(d, it, buf, int64(8*len(buf))))
			}
			if err := c.Waitall(all); err != nil {
				return err
			}
			for _, r := range recvs {
				vals := r.Message.Payload.([]float64)
				copy(halo[rp.HaloOffset[r.Message.Src]:], vals)
			}

			// y = A_loc·x + A_nl·halo (host kernels; the GPU timing
			// side of this pipeline is what cmd/scaling measures).
			if err := rp.Local.MulVec(y, x); err != nil {
				return err
			}
			if err := rp.NonLocal.MulVecAdd(y, halo); err != nil {
				return err
			}

			// Rayleigh quotient and normalization via allreduce.
			var xy, yy float64
			for i := range y {
				xy += x[i] * y[i]
				yy += y[i] * y[i]
			}
			next, err := c.AllreduceSum(xy)
			if err != nil {
				return err
			}
			sumYY, err := c.AllreduceSum(yy)
			if err != nil {
				return err
			}
			norm := math.Sqrt(sumYY)
			for i := range y {
				x[i] = y[i] / norm
			}
			if it > 0 && math.Abs(next-lambda) <= tol*math.Abs(next) {
				lambda = next
				iters = it + 1
				break
			}
			lambda = next
			iters = it + 1
		}
		if c.Rank() == 0 {
			distLambda = lambda
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serial reference.
	ref, err := solver.PowerIteration(solver.CSROperator{M: m}, nil, tol, 10*maxIter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: lambda_max = %.9f after %d iterations\n", distLambda, iters)
	fmt.Printf("serial:      lambda_max = %.9f after %d iterations\n", ref.Eigenvalue, ref.Iterations)
	fmt.Printf("difference: %.2e\n", math.Abs(distLambda-ref.Eigenvalue))
	fmt.Printf("simulated cluster wallclock: %.3f ms (%d ranks)\n", 1e3*clocks[0], ranks)
	if math.Abs(distLambda-ref.Eigenvalue) > 1e-6 {
		log.Fatal("distributed and serial eigenvalues disagree")
	}
}
