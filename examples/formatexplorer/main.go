// Format explorer: a storage-format shoot-out over matrices with very
// different sparsity patterns, showing where pJDS wins, where ELLPACK
// explodes, and how the sorting window trades padding against
// permutation damage — the §II-A discussion, interactive.
package main

import (
	"fmt"
	"log"
	"math"

	"pjds"
)

func main() {
	cases := []struct {
		name string
		m    *pjds.CSR
	}{
		{"sAMG (AMG, short rows)", pjds.Generate("sAMG", 0.03)},
		{"DLR1 (CFD blocks)", pjds.Generate("DLR1", 0.1)},
		{"HMEp (Hamiltonian)", pjds.Generate("HMEp", 0.02)},
		{"2D Laplacian (constant rows)", pjds.Stencil2D(200, 200)},
		{"power law (one hot row)", powerLawExtreme(20000)},
	}
	dev := pjds.TeslaC2070()

	for _, c := range cases {
		st := pjds.ComputeStats(c.m)
		fmt.Printf("\n=== %s: N=%d Nnzr=%.1f max=%d ===\n", c.name, st.Rows, st.AvgRowLen, st.MaxRowLen)
		fmt.Printf("%-12s %14s %14s %10s\n", "format", "stored elems", "footprint MB", "GF/s (DP)")

		ell := pjds.NewELLPACK(c.m)
		x := make([]float64, c.m.NCols)
		for i := range x {
			x[i] = 1 + math.Sin(float64(i))
		}

		// Plain ELLPACK (computes on padding).
		y := make([]float64, c.m.NRows)
		stE, err := pjds.RunELLPACK(dev, ell, y, x)
		if err != nil {
			log.Fatal(err)
		}
		report(ell, stE.GFlops)

		// ELLPACK-R.
		ellr := pjds.NewELLPACKR(c.m)
		stR, err := pjds.RunELLPACKR(dev, ellr, y, x)
		if err != nil {
			log.Fatal(err)
		}
		report(ellr, stR.GFlops)

		// pJDS.
		p, err := pjds.NewPJDS(c.m, pjds.Options{})
		if err != nil {
			log.Fatal(err)
		}
		yp := make([]float64, p.NPad)
		stP, err := pjds.RunPJDS(dev, p, yp, x)
		if err != nil {
			log.Fatal(err)
		}
		report(p, stP.GFlops)

		fmt.Printf("pJDS data reduction vs ELLPACK: %.1f%%, padding overhead %.4f%%\n",
			100*pjds.DataReduction(ell, p), 100*p.PaddingOverhead())
	}
}

func report(f pjds.Format, gflops float64) {
	fmt.Printf("%-12s %14d %14.1f %10.2f\n",
		f.Name(), f.StoredElems(), float64(f.FootprintBytes())/(1<<20), gflops)
}

// powerLawExtreme builds the §II-A worst case: one fully populated row
// over singletons.
func powerLawExtreme(n int) *pjds.CSR {
	coo := pjds.NewCOO(n, n)
	for j := 0; j < n; j++ {
		coo.Add(0, j, 1)
	}
	for i := 1; i < n; i++ {
		coo.Add(i, i, 2)
	}
	return coo.ToCSR()
}
