package pjds

// Repository-level benchmarks: one per table and figure of the paper,
// plus the DESIGN.md ablations. Each regenerates its artefact through
// internal/experiments and reports the headline numbers as custom
// benchmark metrics.
//
// Matrix sizes default to scale 0.1 of the published dimensions so the
// full suite finishes in minutes; set PJDS_SCALE=1 (and be patient)
// to run at the published sizes. The cmd/ binaries produce the same
// artefacts with progress output and plots.

import (
	"io"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/experiments"
)

// BenchmarkTable1_DataReduction regenerates Table I's first row: the
// pJDS-vs-ELLPACK storage reduction per test matrix.
func BenchmarkTable1_DataReduction(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		for _, name := range experiments.Table1Matrices() {
			m, err := experiments.Matrix(name, scale)
			if err != nil {
				b.Fatal(err)
			}
			ell := NewELLPACK(m)
			p, err := NewPJDS(m, Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*DataReduction(ell, p), "redPct_"+name)
		}
	}
}

// BenchmarkTable1_SpMVM regenerates the full GF/s block of Table I
// ({SP, DP} × {ECC on, off} × {ELLPACK-R, pJDS} × 4 matrices).
func BenchmarkTable1_SpMVM(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			b.ReportMetric(r.DP.ECCOn.ELLPACKR.GFlops, "GFs_DP1_ELLR_"+r.Matrix)
			b.ReportMetric(r.DP.ECCOn.PJDS.GFlops, "GFs_DP1_pJDS_"+r.Matrix)
		}
	}
}

// BenchmarkFig2_StorageAndUtilization regenerates the Fig. 2
// comparison: stored elements and reserved-but-idle SIMT slots for
// ELLPACK / ELLPACK-R / pJDS.
func BenchmarkFig2_StorageAndUtilization(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig2("sAMG", scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.LaneEfficiency, "laneEffPct_"+r.Format)
		}
	}
}

// BenchmarkFig3_RowLengthHistograms regenerates the Fig. 3 histograms
// and reports each matrix's mean row length.
func BenchmarkFig3_RowLengthHistograms(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		entries, err := experiments.RunFig3(scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			b.ReportMetric(e.Histogram.Mean(), "meanNnzr_"+e.Matrix)
		}
	}
}

// BenchmarkSec2B_PCIeImpact regenerates the §II-B analysis: Eq. (3)/(4)
// bounds and the measured PCIe-inclusive single-GPU performance.
func BenchmarkSec2B_PCIeImpact(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunSec2B(scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MaxNnzr50WorstCase, "eq3_worst_Nnzr")
		b.ReportMetric(rep.MinNnzr10WorstCase, "eq4_worst_Nnzr")
		for _, e := range rep.Effective {
			b.ReportMetric(e.WithPCIGFlops, "GFs_withPCIe_"+e.Matrix)
		}
	}
}

// BenchmarkFig4_Timeline regenerates the task-mode event timeline.
func BenchmarkFig4_Timeline(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		events, err := experiments.RunFig4Timeline("DLR1", scale, 8, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(events)), "events")
	}
}

// benchmarkFig5 runs one strong-scaling sweep and reports task-mode
// GF/s at the smallest and largest node counts.
func benchmarkFig5(b *testing.B, matrixName string, nodes []int, format distmv.FormatKind) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFig5(experiments.Fig5Config{
			Matrix:     matrixName,
			Scale:      scale,
			Nodes:      nodes,
			Iterations: 2,
			Format:     format,
		}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Mode != distmv.TaskMode {
				continue
			}
			if p.Nodes == nodes[0] || p.Nodes == nodes[len(nodes)-1] {
				b.ReportMetric(p.GFlops, "GFs_task_P"+itoa(p.Nodes))
			}
		}
	}
}

// BenchmarkFig5a_DLR1Scaling regenerates Fig. 5a (DLR1, 1–32 nodes,
// three modes; the task-mode endpoints are reported).
func BenchmarkFig5a_DLR1Scaling(b *testing.B) {
	benchmarkFig5(b, "DLR1", []int{1, 2, 4, 8, 16, 32}, distmv.FormatELLPACKR)
}

// BenchmarkFig5b_UHBRScaling regenerates Fig. 5b (UHBR, 5–32 nodes;
// the paper cannot run below 5 nodes for memory reasons).
func BenchmarkFig5b_UHBRScaling(b *testing.B) {
	benchmarkFig5(b, "UHBR", []int{5, 8, 16, 32}, distmv.FormatELLPACKR)
}

// BenchmarkOutlook_PJDSCluster runs the paper's §IV outlook: the
// multi-GPU code with pJDS as the device format (experiment E12).
func BenchmarkOutlook_PJDSCluster(b *testing.B) {
	benchmarkFig5(b, "DLR1", []int{4, 16}, distmv.FormatPJDS)
}

// BenchmarkOutlook_WeakScaling runs the weak-scaling study of the §IV
// outlook ("more extensive scaling studies"): per-GPU problem size
// held constant, task-mode efficiency reported at the endpoints.
func BenchmarkOutlook_WeakScaling(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunWeakScaling(experiments.WeakConfig{
			Matrix:     "DLR1",
			BaseScale:  scale / 8,
			Nodes:      []int{1, 2, 4, 8},
			Iterations: 2,
		}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Mode == distmv.TaskMode && p.Nodes == 8 {
				b.ReportMetric(100*p.Efficiency, "effPct_task_P8")
			}
		}
	}
}

// BenchmarkOutlook_FormatComparison runs the §IV "thorough comparison
// of pJDS with sliced ELLPACK / sliced ELLR-T" across the Table I
// matrices; pJDS's DP ECC-on GF/s per matrix is reported.
func BenchmarkOutlook_FormatComparison(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RunFormatComparison(scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Format == "pJDS" {
				b.ReportMetric(c.GFlops, "GFs_pJDS_"+c.Matrix)
			}
		}
	}
}

// The DESIGN.md ablations.

func BenchmarkAblation_L2(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationL2("sAMG", scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].GFlops/pts[2].GFlops, "cache_speedup")
	}
}

func BenchmarkAblation_SortWindow(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationSortWindow("sAMG", scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Extra, "overhead_unsorted")
		b.ReportMetric(pts[len(pts)-1].Extra, "overhead_global")
	}
}

func BenchmarkAblation_BlockHeight(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationBlockHeight("sAMG", scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.GFlops, "GFs_"+p.Setting)
		}
	}
}

func BenchmarkAblation_MPIProgress(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationMPIProgress("DLR1", scale, 8, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].GFlops/pts[0].GFlops, "async_speedup")
	}
}

func BenchmarkAblation_RCM(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationRCM("scrambled", scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].GFlops/pts[0].GFlops, "rcm_speedup")
	}
}

func BenchmarkAblation_ELLRT(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationELLRT("sAMG", scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, p := range pts[:4] {
			if p.GFlops > best {
				best = p.GFlops
			}
		}
		b.ReportMetric(pts[4].GFlops/best, "pjds_vs_best_ellrt")
	}
}

func BenchmarkAblation_Partition(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationPartition(scale, 8, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].GFlops/pts[1].GFlops, "nnz_vs_rows_speedup")
	}
}

func BenchmarkAblation_Occupancy(b *testing.B) {
	scale := experiments.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationOccupancy("DLR1", scale, 8, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].GFlops/pts[0].GFlops, "no_derating_speedup")
	}
}

// itoa avoids importing strconv for two call sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
