package pjds

// Integration tests: cross-module pipelines a downstream user would
// actually run, end to end, with every stage verified against an
// independent reference.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestPipelineFileToClusterSolve walks the full life of a matrix:
// written to a MatrixMarket file, read back, analysed by the advisor,
// converted to pJDS, multiplied on the simulated GPU, distributed
// across a simulated cluster, and finally used inside a permuted-basis
// CG solve — with cross-checks at every hand-off.
func TestPipelineFileToClusterSolve(t *testing.T) {
	// Stage 1: build and round-trip through the exchange format.
	orig := Stencil2D(40, 40)
	path := filepath.Join(t.TempDir(), "lap.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixMarket(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadMatrixMarket(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(m, 0) {
		t.Fatal("file round trip changed the matrix")
	}

	// Stage 2: advisor sanity (constant rows, tiny Nnzr → CPU,
	// ELLPACK-R).
	rec := Recommend(ComputeStats(m))
	if rec.Format == "" || len(rec.Reasons) == 0 {
		t.Fatal("advisor gave no answer")
	}

	// Stage 3: GPU spMVM vs CRS.
	n := m.NRows
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.03 * float64(i))
	}
	ref := make([]float64, n)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	p, err := NewPJDS(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	yp := make([]float64, p.NPad)
	if _, err := RunPJDS(TeslaC2070(), p, yp, x); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, n)
	for i, old := range p.Perm {
		y[old] = yp[i]
	}
	for i := range ref {
		if math.Abs(y[i]-ref[i]) > 1e-10 {
			t.Fatalf("GPU result differs at %d", i)
		}
	}

	// Stage 4: distributed spMVM on 5 nodes, all modes.
	for _, mode := range []Mode{VectorMode, NaiveOverlap, TaskMode} {
		res, err := RunCluster(m, x, 5, mode, ClusterConfig{Iterations: 1})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := range ref {
			if math.Abs(res.Y[i]-ref[i]) > 1e-10 {
				t.Fatalf("%v: cluster result differs at %d", mode, i)
			}
		}
	}

	// Stage 5: permuted-basis CG solve against the known solution.
	op, err := NewPermutedPJDS(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bp := op.Enter(make([]float64, n), ref) // solve A·x = A·x_ref
	xp := make([]float64, n)
	if _, err := CG(op, xp, bp, 1e-11, 5000); err != nil {
		t.Fatal(err)
	}
	got := op.Leave(make([]float64, n), xp)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-6 {
			t.Fatalf("CG solution differs at %d: %g vs %g", i, got[i], x[i])
		}
	}
}

// TestPipelineRCMThenPJDSSolve chains the reordering tools: RCM to
// recover locality, symmetric permutation, pJDS conversion, GMRES on
// the reordered system, and mapping the solution back.
func TestPipelineRCMThenPJDSSolve(t *testing.T) {
	// A scrambled banded SPD-ish system.
	base := Stencil2D(30, 30)
	n := base.NRows
	scramble := RCM(base) // any valid permutation works for scrambling
	// Reverse it to actually scramble (RCM of a stencil is tame, so
	// compose with a deterministic shuffle).
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		scramble[i], scramble[j] = scramble[j], scramble[i]
	}
	m := PermuteSymmetric(base, scramble)

	// Recover locality.
	p := RCM(m)
	rm := PermuteSymmetric(m, p)

	// Solve rm·z = pb with GMRES + Jacobi, then undo both perms.
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + math.Cos(0.02*float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	pb := make([]float64, n)
	for i, old := range p {
		pb[i] = b[old]
	}
	op := csrOp{rm}
	z := make([]float64, n)
	if _, err := GMRES(op, z, pb, 40, 1e-12, 8000, NewJacobi(rm)); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	for i, old := range p {
		got[old] = z[i]
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("solution differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

type csrOp struct{ m *CSR }

func (o csrOp) Dim() int                   { return o.m.NRows }
func (o csrOp) Apply(y, x []float64) error { return o.m.MulVec(y, x) }

// TestPipelineEigenBothBases cross-checks the eigensolvers: Lanczos in
// the permuted pJDS basis against power iteration in the original
// basis, on a generated Hamiltonian-like matrix.
func TestPipelineEigenBothBases(t *testing.T) {
	raw := Generate("HMEp", 0.002)
	m, err := Symmetrize(raw)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewPermutedPJDS(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := Lanczos(op, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PowerIteration(csrOp{m}, nil, 1e-11, 50000)
	if err != nil {
		t.Fatal(err)
	}
	lmax := lr.RitzValues[len(lr.RitzValues)-1]
	if math.Abs(lmax-pr.Eigenvalue) > 1e-5*(1+math.Abs(pr.Eigenvalue)) {
		t.Fatalf("Lanczos %.8f vs power iteration %.8f", lmax, pr.Eigenvalue)
	}
}

// TestPipelineExportImportStats: generated matrices survive export and
// re-import with identical structure statistics.
func TestPipelineExportImportStats(t *testing.T) {
	m := Generate("sAMG", 0.003)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ComputeStats(m), ComputeStats(back)
	if a != b {
		t.Fatalf("stats changed: %+v vs %+v", a, b)
	}
}
