module pjds

go 1.22
